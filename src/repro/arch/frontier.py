"""Incrementally-maintained VT frontier indexes (hot-path structures).

The simulator repeatedly needs "the earliest pending work under the
*stripped* VT transform" — a task's key with its final lower-bound
tiebreaker replaced by the present cycle's bound (see
``Simulator._stripped``). Recomputing that minimum by scanning queues,
spill buffers and the whole live set on every dispatch/GVT tick is what
made the simulator core O(live) per event; these indexes make it
O(log n) amortized per queue operation with lazy deletion, following the
order-maintenance approach of DePa (Westrick et al., 2022) adapted to
fractal VTs.

The subtlety that shapes the design: stripped keys of tasks at
*different* nesting depths are not comparable time-invariantly. Two
stripped candidates share the dynamic bound ``now_lb`` in their final
position, so within one depth their order never changes as ``now``
advances — but across depths, a shallow task's final ``(ts, now_lb)``
element is compared against a deep task's *frozen* ancestor tiebreaker,
and that comparison flips as ``now_lb`` grows past it. Hence
:class:`StrippedIndex` keeps **one lazy-deletion heap per depth**
(time-invariant order inside each) and takes the minimum across the few
live depths at query time, splicing the caller's current ``now_lb`` into
each depth's top entry. This yields exactly the value the linear scan
would produce, at O(depths) per query.

Entry invalidation is by token: each entry snapshots the owner task's
token attribute at push time and is dead once the token moved on. Pushes
always bump the token first, so at most one entry per task is ever
valid.
"""

from __future__ import annotations

import heapq
from operator import attrgetter
from typing import Dict, List, Optional, Tuple


def stripped_prefix(key: tuple) -> tuple:
    """The time-invariant part of a key's stripped transform.

    ``Simulator._stripped`` maps ``key`` to
    ``key[:-1] + ((key[-1][0], now_lb),)``; everything except ``now_lb``
    is fixed at enqueue time (requeues replace only the lower bound, and
    global VT rewrites rebuild the indexes wholesale). The prefix ends in
    a 1-tuple so it never accidentally compares equal to a full key.
    """
    return key[:-1] + ((key[-1][0],),)


class StrippedIndex:
    """Per-depth lazy-deletion heaps over stripped VT prefixes.

    ``token_attr`` names the integer attribute on tasks that versions
    their entries (``queue_token`` for queue/buffer indexes,
    ``_gvt_token`` for the GVT frontier). The caller is responsible for
    bumping it to invalidate; :meth:`push` records the current value.
    """

    __slots__ = ("_heaps", "_seq", "_token_of", "scan_steps", "queries")

    def __init__(self, token_attr: str = "queue_token"):
        # depth -> heap of (prefix, seq, token, task)
        self._heaps: Dict[int, List[Tuple[tuple, int, int, object]]] = {}
        self._seq = 0
        self._token_of = attrgetter(token_attr)
        #: profile counters: heap entries examined (incl. stale pops) and
        #: min queries answered — the measured frontier-scan length
        self.scan_steps = 0
        self.queries = 0

    def push(self, task) -> None:
        """Index ``task`` under its current key (token already bumped)."""
        key = task.order_key()
        prefix = key[:-1] + ((key[-1][0],),)
        heap = self._heaps.get(len(key))
        if heap is None:
            heap = self._heaps[len(key)] = []
        self._seq += 1
        heapq.heappush(heap, (prefix, self._seq, self._token_of(task), task))

    def min_candidate(self, now_lb_raw: int) -> Optional[tuple]:
        """The minimum stripped key over all live entries, with ``now_lb_raw``
        spliced in as the dynamic final tiebreaker — byte-equal to
        ``min(stripped(t.order_key()) for t in live)``."""
        self.queries += 1
        best: Optional[tuple] = None
        token_of = self._token_of
        for heap in self._heaps.values():
            while heap:
                prefix, seq, token, task = heap[0]
                self.scan_steps += 1
                if token != token_of(task):
                    heapq.heappop(heap)
                    continue
                cand = prefix[:-1] + ((prefix[-1][0], now_lb_raw),)
                if best is None or cand < best:
                    best = cand
                break
        return best

    def clear(self) -> None:
        """Drop every entry (global VT rewrite: caller re-pushes)."""
        self._heaps.clear()

    def __repr__(self) -> str:
        sizes = {d: len(h) for d, h in self._heaps.items()}
        return f"StrippedIndex(depths={sizes})"
