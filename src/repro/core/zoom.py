"""Zooming: unbounded nesting over a bounded VT budget (paper Sec. 4.3).

When a task wants to create a subdomain but its fractal VT has no bits
left, the system *zooms in*: it waits until the base-domain task sharing
the requester's base domain VT commits, aborts and spills every remaining
base-domain task to an in-memory stack (recursively squashing their
subdomains, Fig. 13b), and then shifts the common base domain VT out of
every live fractal VT, freeing bits (Fig. 13d). *Zooming out* reverses the
process when a base-domain task enqueues to its (parked) superdomain, or
when the zoomed-in region drains.

All of this reuses the ordinary spill machinery; speculative state is never
spilled — speculative base tasks are aborted first, exactly as the paper
prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SimulationError
from ..telemetry.events import ZoomEvent
from ..vt import DomainVT, FractalVT, Ordering, Tiebreaker
from .task import TaskState
from ..arch.spill import SpillBuffer


@dataclass
class ZoomRequest:
    direction: str          # "in" | "out"
    task: object            # the parked (WAIT_ZOOM) requester
    needed_bits: int = 0    # for zoom-in: bits the new subdomain VT needs


class ZoomFrame:
    """One zoomed-out base domain: its spilled tasks + saved ordering/ts."""

    __slots__ = ("buffer", "ordering", "timestamp")

    def __init__(self, tasks: List, ordering: Ordering, timestamp: int):
        self.buffer = SpillBuffer(tasks)
        self.buffer.is_zoom = True
        self.ordering = ordering
        self.timestamp = timestamp

    def __repr__(self) -> str:
        return (f"ZoomFrame({self.ordering.value}, ts={self.timestamp}, "
                f"{len(self.buffer)} spilled)")


class ZoomController:
    """Serializes zoom-in/zoom-out operations for one simulator."""

    def __init__(self, sim):
        self.sim = sim
        self.frames: List[ZoomFrame] = []
        self.requests: List[ZoomRequest] = []

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of zoom frames currently on the stack."""
        return len(self.frames)

    def park(self, task, direction: str, needed_bits: int = 0) -> None:
        """Register a request for an already-parked (WAIT_ZOOM) task."""
        self.requests.append(ZoomRequest(direction, task, needed_bits))

    def drop_request(self, task) -> None:
        """Remove a parked task's outstanding zoom request."""
        self.requests = [r for r in self.requests if r.task is not task]

    # ------------------------------------------------------------------
    def process(self) -> None:
        """Attempt every outstanding request (called from the GVT tick)."""
        sim = self.sim
        for req in list(self.requests):
            task = req.task
            if task.state is not TaskState.WAIT_ZOOM:
                self.drop_request(task)  # squashed meanwhile
                continue
            if req.direction == "in":
                self._try_zoom_in(req)
            else:
                self._try_zoom_out(req)
        # Auto zoom-out: the zoomed-in region drained with outer work
        # parked (possibly several empty frames if spilled tasks were
        # squashed meanwhile).
        while self.frames and not sim._active_live():
            self.zoom_out()

    # ------------------------------------------------------------------
    def _try_zoom_in(self, req: ZoomRequest) -> None:
        sim = self.sim
        task = req.task
        if task.vt.bits + req.needed_bits <= sim.vt_budget:
            # An earlier zoom already freed enough bits.
            self._release(req)
            return
        if task.vt.depth == 1:
            raise SimulationError(
                f"zoom-in requested by base-domain task {task}: vt_bits="
                f"{sim.vt_budget} cannot hold two nesting levels of this "
                f"shape; increase vt_bits")
        base_key = (task.vt.domains[0].key(),)
        # Wait until the base-domain task that shares our base domain VT
        # commits: then nothing at or before that VT is still live.
        for other in sim._active_live():
            if other is not task and other.order_key() <= base_key:
                return
        self.zoom_in(task)
        self._release(req)

    def _try_zoom_out(self, req: ZoomRequest) -> None:
        sim = self.sim
        task = req.task
        if task.vt.depth > 1:
            # A zoom-out already happened; the superdomain is reachable.
            self._release(req)
            return
        if not self.frames:
            raise SimulationError(
                f"zoom-out requested by {task} with an empty zoom stack")
        key = task.order_key()
        for other in sim._active_live():
            if other is not task and other.order_key() < key:
                return
        self.zoom_out()
        self._release(req)

    def _release(self, req: ZoomRequest) -> None:
        self.drop_request(req.task)
        self.sim._zoom_release(req.task)

    # ------------------------------------------------------------------
    def zoom_in(self, requester) -> None:
        """Spill the base domain and shift it out of every live VT."""
        sim = self.sim
        base_dvt = requester.vt.domains[0]

        # 1. Abort speculative base-domain tasks (recursively eliminating
        #    their descendants, Fig. 13b). Requester is depth >= 2 and not
        #    a descendant of any live base task, so it survives.
        spec_base = [t for t in sim._active_live()
                     if t.vt.depth == 1 and t.is_speculative]
        if spec_base:
            sim._abort_cascade(spec_base, "zoom-in spill")

        # 2. Spill every (now non-speculative) base-domain task (Fig. 13c).
        victims = [t for t in sim._active_live() if t.vt.depth == 1]
        for t in victims:
            sim._extract_pending(t)
        frame = ZoomFrame(victims, base_dvt.ordering, base_dvt.timestamp)
        for t in victims:
            t.state = TaskState.SPILLED
            t.spill_buffer = frame.buffer
        self.frames.append(frame)
        sim.arbiter.push_base(base_dvt.ordering, base_dvt.timestamp)

        # 3. The outermost subdomain becomes the base (Fig. 13d): every
        #    remaining task shares the requester's base domain VT; shift
        #    it out.
        base_key = base_dvt.key()
        for t in sim._active_live():
            if t.vt.domains[0].key() != base_key:
                raise SimulationError(
                    f"zoom-in: live task {t} does not share base VT "
                    f"{base_dvt!r}")
            t.vt = t.vt.drop_base()
        sim._rebuild_queues()
        if sim._ebus is not None:
            sim._ebus.emit(ZoomEvent(sim.now, "in", len(self.frames),
                                     len(victims)))

    def zoom_out(self) -> None:
        """Restore the most recently spilled base domain."""
        sim = self.sim
        frame = self.frames.pop()
        ordering, timestamp = sim.arbiter.pop_base()
        restored = DomainVT(ordering,
                            timestamp if ordering.is_ordered else 0,
                            Tiebreaker(raw=0, cycle=0, tile=0))
        # Right-shift every live VT, prepending the restored base domain VT
        # with a zero tiebreaker: the zoomed region holds all the earliest
        # active tasks, so this changes no order relations.
        for t in sim._active_live():
            t.vt = t.vt.with_base(restored)
        restored_tasks = list(frame.buffer.tasks)
        for t in restored_tasks:
            t.state = TaskState.PENDING
            t.spill_buffer = None
            sim._requeue(t)
        sim._rebuild_queues()
        if sim._ebus is not None:
            sim._ebus.emit(ZoomEvent(sim.now, "out", len(self.frames),
                                     len(restored_tasks)))
