"""Regression tests for scheduler starvation livelocks.

Each of these froze an earlier build (zero commits while coalescers,
splitters, and pressure aborts cycled):

1. The GVT-blocking pending task lived on a tile whose cores were all
   finish-stalled (fixed: per-tile commit-queue pressure aborts).
2. Splitters/coalescers compared frozen lower-bound keys, which mark
   freshly-requeued early work as "latest" — subdomain tasks with old
   real ancestor prefixes ping-ponged between queue and memory forever
   (fixed: program-order (stripped) comparisons, never spilling the
   earliest, and dispatch deferral only for same-cycle parents).
"""

import pytest

from repro import Ordering, Simulator, SystemConfig
from repro.apps import silo
from repro.bench.harness import run_app


class TestStarvationRegressions:
    def test_silo_fractal_one_core_bloom(self):
        """The original reproducer: 128 transactions, one core, default
        (bloom) config. Used to cycle coalescer<->splitter forever."""
        inp = silo.make_input(n_warehouses=2, n_districts=4, n_txns=128)
        run = run_app(silo, inp, variant="fractal", n_cores=1,
                      config=SystemConfig.with_cores(1),
                      max_cycles=20_000_000)
        silo.check(run.handles, inp)

    def test_one_core_subdomain_floods(self):
        """Many unordered roots each spawning an ordered subdomain on one
        core with a small task queue: early subdomain work must never be
        spilled behind later roots."""
        sim = Simulator(SystemConfig.with_cores(
            1, task_queue_per_core=24, conflict_mode="precise"))
        done = sim.cell("done", 0)

        def op(ctx, k):
            done.add(ctx, 1)

        def txn(ctx):
            ctx.create_subdomain(Ordering.ORDERED_32)
            for k in range(4):
                ctx.enqueue_sub(op, k, ts=k)

        for _ in range(60):
            sim.enqueue_root(txn)
        sim.run(max_cycles=20_000_000)
        assert done.peek() == 240

    def test_all_tiles_stalled_with_remote_blocker(self):
        """Commit queues wedge on every tile while the earliest task waits
        on one of them (per-tile pressure-abort regression)."""
        sim = Simulator(SystemConfig.with_cores(
            16, commit_queue_per_core=2, conflict_mode="precise"))
        cell = sim.cell("c", 0)

        def short(ctx):
            cell.add(ctx, 1)
            ctx.compute(40)

        for _ in range(120):
            sim.enqueue_root(short)
        sim.run(max_cycles=20_000_000)
        assert cell.peek() == 120
