"""Fig. 3: speedup of maxflow versions on 1..N cores.

Paper: maxflow-flat saturates at 4.9x while maxflow-fractal reaches 322x
at 256 cores (over 1-core flat). Expected shape here: flat saturates
early; fractal keeps scaling and clearly wins at the largest core count.
"""

from _common import core_counts, emit, once, run_once
from repro.apps import maxflow
from repro.bench.report import format_table


def _input():
    return maxflow.make_input(b=4, layers=4)


def sweep(cores):
    inp = _input()
    runs = {(v, n): run_once(maxflow, inp, v, n)
            for v in ("flat", "fractal") for n in cores}
    base = runs[("flat", 1)].makespan
    rows = [[f"{n}c",
             f"{base / runs[('flat', n)].makespan:.2f}x",
             f"{base / runs[('fractal', n)].makespan:.2f}x"]
            for n in cores]
    emit("fig03_maxflow_speedup",
         format_table(["cores", "flat", "fractal"], rows))
    return runs


def bench_fig03_maxflow_fractal(benchmark):
    inp = _input()
    run = once(benchmark, lambda: run_once(maxflow, inp, "fractal", 16))
    assert run.stats.tasks_committed > 0


def bench_fig03_sweep(benchmark):
    cores = core_counts(quick=True)
    runs = once(benchmark, lambda: sweep(cores))
    top = max(cores)
    assert (runs[("fractal", top)].makespan
            < runs[("flat", top)].makespan), \
        "fractal must beat flat at the largest core count (Fig. 3)"


if __name__ == "__main__":
    sweep(core_counts())
