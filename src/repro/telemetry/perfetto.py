"""Chrome/Perfetto ``trace_event`` export (paper Fig. 1, interactive).

Converts a recorded event stream into the Trace Event JSON format that
``chrome://tracing`` and https://ui.perfetto.dev open directly:

- one thread track per core (committed attempts as complete slices,
  aborted attempts as slices in the ``aborted`` category, flagged via
  args and a reserved warning color),
- conflicts as flow arrows from the accessor's slice to each victim's
  core at the conflict cycle,
- zooms, wraparounds and spills as instant events,
- live/finished task counts from GVT ticks as counter tracks.

Timestamps are simulated cycles written into the ``ts``/``dur``
microsecond fields — absolute units are meaningless for a cycle-level
simulator; relative lengths are what the timeline shows.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from .events import Event

_PID = 0


def _meta(name: str, tid: int, value: str) -> dict:
    return {"ph": "M", "pid": _PID, "tid": tid, "name": name,
            "args": {"name": value}}


def to_perfetto(events: Iterable[Event], *, sim_name: str = "repro") -> dict:
    """Build the trace_event document from an ordered event stream."""
    out: List[dict] = []
    cores = set()
    flow_id = 0

    for e in events:
        kind = e.KIND
        if kind == "commit":
            cores.add(e.core)
            out.append({"ph": "X", "pid": _PID, "tid": e.core, "ts": e.start,
                        "dur": max(e.duration, 1), "name": e.label,
                        "cat": "task",
                        "args": {"tid": e.tid, "outcome": "committed",
                                 "depth": e.depth, "commit_t": e.t}})
        elif kind == "abort":
            if e.core is None or e.executed <= 0:
                continue
            cores.add(e.core)
            out.append({"ph": "X", "pid": _PID, "tid": e.core, "ts": e.start,
                        "dur": max(e.executed, 1), "name": e.label,
                        "cat": "aborted", "cname": "terrible",
                        "args": {"tid": e.tid, "outcome": "aborted",
                                 "reason": e.reason, "parked": e.parked,
                                 "cascade": e.cascade, "hop": e.hop}})
        elif kind == "conflict":
            if e.core is None:
                continue
            cores.add(e.core)
            for victim, vcore in zip(e.victims, e.victim_cores):
                if vcore is None:
                    continue
                flow_id += 1
                common = {"pid": _PID, "ts": e.t, "name": "conflict",
                          "cat": "conflict", "id": flow_id,
                          "args": {"line": e.line, "cause": e.cause,
                                   "aggressor": e.tid, "victim": victim}}
                out.append({"ph": "s", "tid": e.core, **common})
                out.append({"ph": "f", "bp": "e", "tid": vcore, **common})
        elif kind == "zoom":
            out.append({"ph": "i", "pid": _PID, "tid": 0, "ts": e.t,
                        "s": "g", "name": f"zoom-{e.direction}",
                        "cat": "zoom",
                        "args": {"depth": e.depth, "n_spilled": e.n_spilled}})
        elif kind == "wraparound":
            out.append({"ph": "i", "pid": _PID, "tid": 0, "ts": e.t,
                        "s": "g", "name": "tiebreaker-wraparound",
                        "cat": "vt", "args": {"n_live": e.n_live}})
        elif kind == "spill":
            out.append({"ph": "i", "pid": _PID, "tid": 0, "ts": e.t,
                        "s": "p", "name": e.op, "cat": "spill",
                        "args": {"tile": e.tile, "n_tasks": e.n_tasks,
                                 "duration": e.duration}})
        elif kind == "gvt_tick":
            out.append({"ph": "C", "pid": _PID, "ts": e.t, "name": "tasks",
                        "args": {"live": e.n_live, "finished": e.n_finished}})

    meta = [_meta("process_name", 0, sim_name)]
    for core in sorted(cores):
        meta.append(_meta("thread_name", core, f"core {core}"))
        # keep track order = core order in the UI
        meta.append({"ph": "M", "pid": _PID, "tid": core,
                     "name": "thread_sort_index", "args": {"sort_index": core}})
    return {"traceEvents": meta + out, "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.telemetry.perfetto"}}


def write_perfetto(events: Iterable[Event], path, *,
                   sim_name: str = "repro") -> None:
    """Write a Chrome/Perfetto-loadable trace JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_perfetto(events, sim_name=sim_name), fh)
        fh.write("\n")
