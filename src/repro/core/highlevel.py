"""The high-level, OpenMP/OpenTM-style interface (paper Sec. 3.1, Table 1).

These helpers express nested parallelism without hand-writing task
functions. Each ``forall``-family call creates the calling task's (single)
subdomain and enqueues one task per iteration; continuations (``then``) are
sequenced after the loop body by giving the subdomain ordered semantics and
placing the continuation at a later timestamp — exactly how a compiler
would lower the paper's ``forall ... { } cont;``.

Because a task may create only one subdomain, at most one helper from this
module may be used per task (matching the paper's model; nest by calling
another helper inside the body task).

The iteration *body* receives ``(ctx, item)`` — ``ctx`` is the iteration
task's own context, so bodies can nest further parallelism.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from ..errors import DomainError
from ..mem.data import SpecCell
from ..vt import Ordering


def _body_task(ctx, body, item):
    body(ctx, item)


def _block_task(ctx, block):
    block(ctx)


def _cont_task(ctx, then):
    then(ctx)


def _reduce_body_task(ctx, body, item, cell_addr, combine):
    delta = body(ctx, item)
    if delta is not None:
        current = ctx.load(cell_addr)
        ctx.store(cell_addr, combine(current, delta))


def _hint_of(hint_fn, item):
    return None if hint_fn is None else hint_fn(item)


def forall(ctx, items: Iterable[Any], body: Callable[[Any, Any], None], *,
           then: Optional[Callable] = None,
           hint_fn: Optional[Callable[[Any], int]] = None) -> None:
    """Atomic unordered loop: each iteration runs as a task in a new
    unordered subdomain; optional ``then`` continuation runs after all
    iterations (and shares their atomic unit)."""
    if then is None:
        ctx.create_subdomain(Ordering.UNORDERED)
        for item in items:
            ctx.enqueue_sub(_body_task, body, item,
                            hint=_hint_of(hint_fn, item), label="forall")
        return
    # Sequencing a continuation needs order: iterations at ts 0, then at 1.
    ctx.create_subdomain(Ordering.ORDERED_32)
    for item in items:
        ctx.enqueue_sub(_body_task, body, item, ts=0,
                        hint=_hint_of(hint_fn, item), label="forall")
    ctx.enqueue_sub(_cont_task, then, ts=1, label="forall.then")


def forall_ordered(ctx, items: Iterable[Any],
                   body: Callable[[Any, Any], None], *,
                   then: Optional[Callable] = None,
                   hint_fn: Optional[Callable[[Any], int]] = None) -> None:
    """Atomic ordered loop: iteration index is the timestamp."""
    ctx.create_subdomain(Ordering.ORDERED_32)
    n = 0
    for i, item in enumerate(items):
        ctx.enqueue_sub(_body_task, body, item, ts=i,
                        hint=_hint_of(hint_fn, item), label="forall_ord")
        n = i + 1
    if then is not None:
        ctx.enqueue_sub(_cont_task, then, ts=n, label="forall_ord.then")


def forall_reduce(ctx, items: Iterable[Any],
                  body: Callable[[Any, Any], Any], cell: SpecCell, *,
                  combine: Callable[[Any, Any], Any] = lambda a, b: a + b,
                  then: Optional[Callable] = None,
                  hint_fn: Optional[Callable[[Any], int]] = None) -> None:
    """Atomic unordered loop with a reduction variable.

    ``body`` returns each iteration's contribution (or None); contributions
    fold into ``cell`` (pre-allocated at build time) with ``combine``.
    """
    ordering = Ordering.UNORDERED if then is None else Ordering.ORDERED_32
    ctx.create_subdomain(ordering)
    ts = 0 if then is not None else None
    for item in items:
        ctx.enqueue_sub(_reduce_body_task, body, item, cell.addr, combine,
                        ts=ts, hint=_hint_of(hint_fn, item),
                        label="forall_red")
    if then is not None:
        ctx.enqueue_sub(_cont_task, then, ts=1, label="forall_red.then")


def forall_reduce_ordered(ctx, items: Iterable[Any],
                          body: Callable[[Any, Any], Any], cell: SpecCell, *,
                          combine: Callable[[Any, Any], Any] = lambda a, b: a + b,
                          then: Optional[Callable] = None,
                          hint_fn: Optional[Callable[[Any], int]] = None) -> None:
    """Atomic ordered loop with a reduction variable."""
    ctx.create_subdomain(Ordering.ORDERED_32)
    n = 0
    for i, item in enumerate(items):
        ctx.enqueue_sub(_reduce_body_task, body, item, cell.addr, combine,
                        ts=i, hint=_hint_of(hint_fn, item),
                        label="forall_red_ord")
        n = i + 1
    if then is not None:
        ctx.enqueue_sub(_cont_task, then, ts=n, label="forall_red_ord.then")


def parallel(ctx, *blocks: Callable, then: Optional[Callable] = None) -> None:
    """Execute code blocks as parallel tasks (atomic with their creator)."""
    if not blocks:
        raise DomainError("parallel() needs at least one block")
    if then is None:
        ctx.create_subdomain(Ordering.UNORDERED)
        for block in blocks:
            ctx.enqueue_sub(_block_task, block, label="parallel")
        return
    ctx.create_subdomain(Ordering.ORDERED_32)
    for block in blocks:
        ctx.enqueue_sub(_block_task, block, ts=0, label="parallel")
    ctx.enqueue_sub(_cont_task, then, ts=1, label="parallel.then")


def parallel_reduce(ctx, blocks: Sequence[Callable], cell: SpecCell, *,
                    combine: Callable[[Any, Any], Any] = lambda a, b: a + b,
                    then: Optional[Callable] = None) -> None:
    """Execute blocks as parallel tasks, folding their return values into
    ``cell``, followed by an optional reduction continuation."""
    forall_reduce(ctx, list(blocks), lambda c, blk: blk(c), cell,
                  combine=combine, then=then)


def enqueue_all(ctx, fn: Callable, args_list: Iterable[tuple], *,
                ts: Optional[int] = None,
                hint_fn: Optional[Callable[[tuple], int]] = None) -> None:
    """Enqueue a sequence of same-domain tasks with the same (or no)
    timestamp."""
    for args in args_list:
        ctx.enqueue(fn, *args, ts=ts, hint=_hint_of(hint_fn, args))


def enqueue_all_ordered(ctx, fn: Callable, args_list: Iterable[tuple],
                        start_ts: int, *, stride: int = 1,
                        hint_fn: Optional[Callable[[tuple], int]] = None) -> None:
    """Enqueue a sequence of same-domain tasks over a timestamp range."""
    for i, args in enumerate(args_list):
        ctx.enqueue(fn, *args, ts=start_ts + i * stride,
                    hint=_hint_of(hint_fn, args))


def task(ctx, cont: Callable, *args, ts: Optional[int] = None,
         hint: Optional[int] = None) -> None:
    """Start a new task "in the middle of a function": the rest of the
    work, packaged as ``cont(ctx, *args)``, runs as a separate same-domain
    task (at the caller's timestamp by default in ordered domains)."""
    if ts is None and ctx.timestamp is not None:
        ts = ctx.timestamp
    ctx.enqueue(cont, *args, ts=ts, hint=hint, label="task")


def callcc(ctx, fn: Callable, cont: Callable, *cont_args,
           ts: Optional[int] = None, hint: Optional[int] = None) -> None:
    """Call-with-current-continuation (paper Table 1).

    Calls ``fn(ctx, cc)`` where ``cc()`` schedules ``cont(ctx, *cont_args)``
    as a separate same-domain task. ``fn`` may enqueue tasks of its own and
    invokes ``cc`` to return control to the caller's continuation.
    """
    if ts is None and ctx.timestamp is not None:
        ts = ctx.timestamp

    def cc():
        ctx.enqueue(cont, *cont_args, ts=ts, hint=hint, label="callcc.cont")

    fn(ctx, cc)
