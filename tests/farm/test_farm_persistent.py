"""Persistent-pool farms and the non-TTY progress fallback."""

import io
import sys

from repro.farm import Farm, JobSpec, apply_timeout
from repro.faults import ResiliencePolicy

FAKEAPP = "tests.farm._fakeapp"


def spec(n_tasks=4):
    return JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                   input_kwargs={"n_tasks": n_tasks})


class TestPersistentPool:
    def test_pool_survives_across_runs(self):
        farm = Farm(jobs=1, use_pool=True, persistent=True, warmup=False)
        try:
            (r1,) = farm.run([spec(4)])
            executor = farm._executor
            assert executor is not None        # kept alive after run()
            (r2,) = farm.run([spec(6)])
            assert farm._executor is executor  # same pool, warm workers
            assert r1.ok and r2.ok
        finally:
            farm.close()
        assert farm._executor is None
        farm.close()                            # idempotent

    def test_context_manager_closes_pool(self):
        with Farm(jobs=1, use_pool=True, persistent=True,
                  warmup=False) as farm:
            (res,) = farm.run([spec(4)])
            assert res.ok
            assert farm._executor is not None
        assert farm._executor is None

    def test_use_pool_false_stays_inline_even_with_many_jobs(self):
        farm = Farm(jobs=4, use_pool=False)
        results = farm.run([spec(4), spec(6)])
        assert [r.stats.tasks_committed for r in results] == [4, 6]
        assert farm._executor is None           # no pool was created

    def test_non_persistent_pool_torn_down_after_run(self):
        farm = Farm(jobs=2, warmup=False)
        farm.run([spec(4)])
        assert farm._executor is None

    def test_apply_timeout_changes_digest_consistently(self):
        s = spec()
        timed = apply_timeout(s, 5.0)
        assert timed.digest() != s.digest()
        assert timed.resilience.max_wall_seconds == 5.0
        # serve admission and Farm._with_timeout must agree on the address
        farm = Farm(jobs=1, timeout_s=5.0)
        assert farm._with_timeout(s).digest() == timed.digest()
        # idempotent: re-applying the same budget keeps the digest
        assert apply_timeout(timed, 5.0).digest() == timed.digest()

    def test_apply_timeout_keeps_tighter_existing_budget(self):
        s = JobSpec(app=FAKEAPP, variant="fractal", n_cores=2,
                    input_kwargs={"n_tasks": 4},
                    resilience=ResiliencePolicy(max_wall_seconds=1.0))
        assert apply_timeout(s, 5.0).resilience.max_wall_seconds == 1.0


class _FakeTty(io.StringIO):
    def isatty(self):
        return True


class TestProgressStreams:
    def run_with_stderr(self, monkeypatch, stream, **farm_kw):
        monkeypatch.setattr(sys, "stderr", stream)
        farm = Farm(jobs=1, progress=True, **farm_kw)
        farm.run([spec(4)])
        return stream.getvalue()

    def test_tty_uses_carriage_return_line(self, monkeypatch):
        out = self.run_with_stderr(monkeypatch, _FakeTty())
        assert "\r" in out
        assert "[farm] 1/1 jobs" in out

    def test_non_tty_emits_plain_periodic_lines(self, monkeypatch):
        out = self.run_with_stderr(monkeypatch, io.StringIO())
        assert "\r" not in out                  # no carriage-return spam
        assert "[farm] 1/1 jobs" in out         # final summary line
        # every line is a complete plain-text record
        for line in out.strip().splitlines():
            assert line.startswith("[farm] ")

    def test_non_tty_lines_are_rate_limited(self, monkeypatch):
        stream = io.StringIO()
        monkeypatch.setattr(sys, "stderr", stream)
        farm = Farm(jobs=1, progress=True)
        farm.progress_interval_s = 3600.0       # only the final line fits
        farm.run([spec(4), spec(5), spec(6)])
        lines = [ln for ln in stream.getvalue().splitlines() if ln]
        assert 1 <= len(lines) <= 2             # first tick + final line
        assert "[farm] 3/3 jobs" in lines[-1]
