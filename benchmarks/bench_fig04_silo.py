"""Fig. 4: speedup of silo versions on 1..N cores.

Paper at 256 cores: silo-fractal 206x, silo-swarm within ~5% of fractal,
silo-flat only 9.7x. Expected shape: fractal and swarm close together,
both far above flat at the largest core count.
"""

from _common import core_counts, emit, once, run_once
from repro.apps import silo
from repro.bench.report import format_table

VARIANTS = ("flat", "swarm", "fractal")


def _input():
    return silo.make_input(n_warehouses=2, n_districts=4, n_txns=128)


def sweep(cores):
    inp = _input()
    runs = {(v, n): run_once(silo, inp, v, n)
            for v in VARIANTS for n in cores}
    base = runs[("flat", 1)].makespan
    rows = [[f"{n}c"] + [f"{base / runs[(v, n)].makespan:.2f}x"
                         for v in VARIANTS]
            for n in cores]
    emit("fig04_silo_speedup", format_table(["cores"] + list(VARIANTS), rows))
    return runs


def bench_fig04_silo_fractal(benchmark):
    inp = _input()
    run = once(benchmark, lambda: run_once(silo, inp, "fractal", 16))
    assert run.stats.tasks_committed > 0


def bench_fig04_sweep(benchmark):
    cores = core_counts(quick=True)
    runs = once(benchmark, lambda: sweep(cores))
    top = max(cores)
    assert runs[("fractal", top)].makespan < runs[("flat", top)].makespan
    # silo-swarm approaches fractal (paper: within 4.5%; loose at toy scale)
    assert (runs[("swarm", top)].makespan
            < 2.0 * runs[("fractal", top)].makespan)


if __name__ == "__main__":
    sweep(core_counts())
