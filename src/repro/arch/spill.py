"""Task spilling: coalescers and splitters (paper Sec. 4.1, Table 2).

When a tile's task queue passes its fill threshold, the task unit dispatches
a *coalescer* — a special job that removes up to ``spill_batch`` of the
latest-VT pending tasks whose parents have committed, stores them in a
memory buffer, and enqueues a *splitter* that will re-enqueue them later.
Splitters are deprioritized relative to all regular tasks, so spilled work
returns only when the tile would otherwise idle.

Zooming (paper Sec. 4.3) reuses this machinery to park whole base domains;
those buffers live on the zoom stack in :mod:`repro.core.zoom`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.task import TaskState
from ..telemetry.events import SpillEvent
from .frontier import StrippedIndex


def select_spill_victims(pending: List, stripped_key: Callable,
                         batch: int) -> List:
    """Choose up to ``batch`` tasks to spill from ``pending``.

    Only tasks whose parents have committed (or are roots) can leave the
    queue — spilled tasks must survive any abort cascade. Victims are the
    *latest* in program order under ``stripped_key`` (frozen lower bounds
    would mark freshly-requeued early work as "latest" and bounce it
    straight back to memory), and the earliest spillable task always stays
    resident: spilling it while it holds the GVT starves every commit.
    """
    spillable = [t for t in pending
                 if t.parent is None
                 or t.parent.state is TaskState.COMMITTED]
    spillable.sort(key=lambda t: stripped_key(t.order_key()), reverse=True)
    if spillable:
        spillable.pop()
    return spillable[:batch]


class SpillBuffer:
    """An in-memory buffer of spilled pending tasks (one per splitter).

    Buffered tasks are indexed by stripped VT prefix so the scheduler's
    splitter-priority check is O(depths) instead of O(buffer). The index
    piggybacks on ``queue_token``: tasks enter a buffer only after leaving
    their task queue (which bumped the token), so bumping again here never
    invalidates a live queue entry, and every exit path — :meth:`remove`,
    re-enqueue on restore — bumps it once more.
    """

    __slots__ = ("tasks", "is_zoom", "_index")

    def __init__(self, tasks: List):
        self.tasks = list(tasks)
        #: True for buffers holding a zoomed-out base domain
        self.is_zoom = False
        self._index = StrippedIndex("queue_token")
        for t in self.tasks:
            t.queue_token += 1
            self._index.push(t)

    def remove(self, task) -> bool:
        """Squash support: drop a spilled task; True when it was here."""
        try:
            self.tasks.remove(task)
        except ValueError:
            return False
        task.queue_token += 1  # invalidates the index entry
        return True

    def min_key(self) -> Optional[tuple]:
        """Lowest VT key inside (spilled tasks still bound the GVT)."""
        if not self.tasks:
            return None
        return min(t.order_key() for t in self.tasks)

    def min_stripped(self, now_lb_raw: int) -> Optional[tuple]:
        """Lowest stripped key inside, with ``now_lb_raw`` spliced in —
        equals ``min(stripped(t.order_key()) for t in tasks)``."""
        return self._index.min_candidate(now_lb_raw)

    def reindex(self) -> None:
        """Re-key every entry after a global VT rewrite (compaction)."""
        self._index.clear()
        for t in self.tasks:
            t.queue_token += 1
            self._index.push(t)

    def __len__(self) -> int:
        return len(self.tasks)


class CoalescerJob:
    """A pending spill operation, dispatched like a (non-speculative) task."""

    __slots__ = ("tile_id", "duration")

    kind = "coalescer"

    def __init__(self, tile_id: int, duration: int):
        self.tile_id = tile_id
        self.duration = duration

    def finish_event(self, now: int, n_tasks: int) -> SpillEvent:
        """The telemetry event for this job's completion."""
        return SpillEvent(now, self.tile_id, self.kind, n_tasks,
                          self.duration)

    def __repr__(self) -> str:
        return f"Coalescer(tile={self.tile_id})"


class SplitterJob:
    """A pending re-enqueue of a spill buffer. Deprioritized.

    The splitter's buffer bounds the GVT through
    :meth:`SpillBuffer.min_key`, standing in for the paper's
    lowest-timestamp tracking of spilled tasks.
    """

    __slots__ = ("tile_id", "buffer", "duration")

    kind = "splitter"

    def __init__(self, tile_id: int, buffer: SpillBuffer, duration: int):
        self.tile_id = tile_id
        self.buffer = buffer
        self.duration = duration

    def finish_event(self, now: int, n_tasks: int) -> SpillEvent:
        """The telemetry event for this job's completion."""
        return SpillEvent(now, self.tile_id, self.kind, n_tasks,
                          self.duration)

    def __repr__(self) -> str:
        return f"Splitter(tile={self.tile_id}, {len(self.buffer)} tasks)"
