"""DomainSpecFor inside a simulator, plus the deferred ctx.emit path."""

import pytest

from repro import SerialExecutor, Simulator, SystemConfig
from repro.specfor import (DomainSpecFor, ReservationTable, SpecForLivelock,
                           SpecForPolicy)
from repro.telemetry import EventBus, SpecForRoundEvent


class ClaimStep:
    """Spec-memory cavity step: iteration i claims all cells[i] or none."""

    def __init__(self, host, cavities, n_cells):
        self.cavities = cavities
        self.resv = ReservationTable.alloc(host, "t.resv", n_cells)
        self.owner = host.array("t.owner", max(n_cells, 1), fill=-1)
        self.success = host.array("t.success", max(len(cavities), 1))

    def reserve(self, ctx, i):
        if any(self.owner.get(ctx, c) >= 0 for c in self.cavities[i]):
            return False
        for c in self.cavities[i]:
            self.resv.write_min(ctx, c, i)
        return True

    def commit(self, ctx, i):
        if not all(self.resv.holds(ctx, c, i) for c in self.cavities[i]):
            return False
        for c in self.cavities[i]:
            self.owner.set(ctx, c, i)
        self.success.set(ctx, i, 1)
        return True

    def release(self, ctx, i):
        for c in self.cavities[i]:
            self.resv.check_release(ctx, c, i)


CAVITIES = [(0, 1), (1, 2), (3,), (2, 3), (0, 4), (4, 5), (5,), (1, 5)]


def greedy(cavities, n_cells):
    owner = [-1] * n_cells
    success = [0] * len(cavities)
    for i, cav in enumerate(cavities):
        if all(owner[c] < 0 for c in cav):
            for c in cav:
                owner[c] = i
            success[i] = 1
    return success, owner


def _build(host, cavities=CAVITIES, n_cells=6, **pol):
    step = ClaimStep(host, cavities, n_cells)
    policy = SpecForPolicy(**pol) if pol else SpecForPolicy(granularity=4)
    eng = DomainSpecFor(host, "t", step, len(cavities), policy=policy)
    eng.enqueue_driver(host)
    return step


class TestDomainSpecFor:
    def test_matches_greedy_on_simulator(self):
        sim = Simulator(SystemConfig.with_cores(8))
        step = _build(sim)
        sim.run()
        sim.audit()
        want_success, want_owner = greedy(CAVITIES, 6)
        assert step.success.snapshot() == want_success
        assert step.owner.snapshot() == want_owner

    def test_matches_greedy_on_serial_executor(self):
        host = SerialExecutor()
        step = _build(host)
        host.run()
        want_success, want_owner = greedy(CAVITIES, 6)
        assert step.success.snapshot() == want_success

    def test_empty_engine_is_a_noop(self):
        sim = Simulator(SystemConfig.with_cores(4))
        _build(sim, cavities=[], n_cells=1)
        stats = sim.run()
        assert stats.completed

    def test_round_events_fold_metrics_without_a_bus(self):
        sim = Simulator(SystemConfig.with_cores(8))
        _build(sim)
        sim.run()
        rounds = sim.metrics.total("specfor_rounds", engine="t")
        assert rounds >= 1
        commits = sim.metrics.total("specfor_commits", engine="t")
        assert commits == sum(greedy(CAVITIES, 6)[0])

    def test_round_events_reach_the_bus_exactly_once(self):
        events = []
        bus = EventBus()
        bus.subscribe(lambda e: isinstance(e, SpecForRoundEvent)
                      and events.append(e))
        sim = Simulator(SystemConfig.with_cores(8), bus=bus)
        _build(sim)
        sim.run()
        assert events
        assert len(events) == sim.metrics.total("specfor_rounds")
        dones = [e.done for e in events]
        assert dones == sorted(dones)
        assert dones[-1] == len(CAVITIES)
        assert all(e.total == len(CAVITIES) for e in events)

    def test_livelock_raises_from_the_controller(self):
        class Stuck:
            def reserve(self, ctx, i):
                return True

            def commit(self, ctx, i):
                return False

        sim = Simulator(SystemConfig.with_cores(4))
        eng = DomainSpecFor(
            sim, "stuck", Stuck(), 4,
            policy=SpecForPolicy(granularity=1, throttle_after=1,
                                 serialize_after=2, max_tries=3))
        eng.enqueue_driver(sim)
        with pytest.raises(SpecForLivelock):
            sim.run()


class TestDeferredEmit:
    def test_emit_publishes_at_commit_with_task_time(self):
        seen = []
        bus = EventBus()
        bus.subscribe(lambda e: isinstance(e, SpecForRoundEvent)
                      and seen.append(e))
        sim = Simulator(SystemConfig.with_cores(2), bus=bus)

        def body(ctx):
            ctx.emit(SpecForRoundEvent(
                0, engine="x", round=0, size=1, fresh=1, committed=1,
                filtered=0, carried=0, done=1, total=1, stage=0))
            assert not seen  # deferred: nothing published mid-task

        sim.enqueue_root(body)
        sim.run()
        assert len(seen) == 1
        assert seen[0].t > 0  # stamped with the commit time
        assert sim.metrics.total("specfor_rounds", engine="x") == 1

    def test_serial_executor_collects_emits(self):
        host = SerialExecutor()

        def body(ctx):
            ctx.emit("marker")

        host.enqueue_root(body)
        host.run()
        assert host.emitted == ["marker"]
