"""Execution timeline traces (paper Fig. 1).

When tracing is enabled the simulator records one segment per task attempt
per core; :func:`render_timeline` draws the Fig. 1-style ASCII chart where
each row is a core, time flows right, and aborted work is marked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class TraceSegment:
    core: int
    start: int
    end: int
    label: str
    outcome: str        # "committed" | "aborted" | "spill"


class Trace:
    """Collected execution segments of one run."""

    def __init__(self):
        self.segments: List[TraceSegment] = []

    def record(self, core: int, start: int, end: int, label: str,
               outcome: str) -> None:
        """Append one execution segment (zero-length segments dropped)."""
        if end > start:
            self.segments.append(TraceSegment(core, start, end, label, outcome))

    def __len__(self) -> int:
        return len(self.segments)


def render_timeline(trace: Trace, n_cores: int, width: int = 100,
                    glyphs: Optional[Dict[str, str]] = None,
                    t0: Optional[int] = None, t1: Optional[int] = None) -> str:
    """Render an ASCII execution timeline.

    Each task label is assigned a glyph from its first letter (override
    with ``glyphs``, mapping label → single character); aborted segments
    render as ``x``. Idle time is blank.
    """
    if not trace.segments:
        return "(empty trace)"
    t0 = min(s.start for s in trace.segments) if t0 is None else t0
    t1 = max(s.end for s in trace.segments) if t1 is None else t1
    span = max(t1 - t0, 1)
    scale = width / span
    rows = []
    for core in range(n_cores):
        row = [" "] * width
        for seg in trace.segments:
            if seg.core != core or seg.end <= t0 or seg.start >= t1:
                continue
            a = max(int((seg.start - t0) * scale), 0)
            b = min(max(int((seg.end - t0) * scale), a + 1), width)
            if seg.outcome == "aborted":
                ch = "x"
            elif glyphs and seg.label in glyphs:
                ch = glyphs[seg.label]
            else:
                ch = (seg.label[:1] or "#")
            for i in range(a, b):
                row[i] = ch
        rows.append(f"Core {core:<3d} |{''.join(row)}|")
    header = f"time {t0:,} .. {t1:,} cycles  ('x' = aborted work)"
    return "\n".join([header] + rows)
