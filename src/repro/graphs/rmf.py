"""rmf-wide maxflow networks (Goldfarb & Grigoriadis, 1988).

The DIMACS "rmf" family — used by the paper's maxflow benchmark — is a
sequence of b x b grid *frames* stacked into a prism: every node connects
to its 4 neighbours within the frame (large capacities) and to one random
node of the next frame (small capacities), so flow must thread narrow,
randomized inter-frame edges. "Wide" instances use large frames and few
layers, one of the harder families from the DIMACS maxflow challenge.

The source is node 0 (corner of the first frame); the sink is the last
node (corner of the last frame).
"""

from __future__ import annotations

import random
from typing import Tuple

from ..errors import AppError
from .graph import Graph


def rmf_wide(b: int, layers: int, *, cap_range: Tuple[int, int] = (1, 100),
             seed: int = 1) -> Tuple[Graph, int, int]:
    """Generate an rmf network of ``layers`` frames of ``b x b`` nodes.

    Returns ``(graph, source, sink)``; the graph is directed with edge
    weights as capacities (paired reverse edges get capacity 0 implicitly —
    the maxflow app adds residual edges itself).
    """
    if b < 2 or layers < 2:
        raise AppError("rmf needs b >= 2 and layers >= 2")
    lo, hi = cap_range
    if not (0 < lo <= hi):
        raise AppError("invalid capacity range")
    rng = random.Random(seed)
    frame = b * b
    n = frame * layers
    g = Graph(n, directed=True)

    def node(layer: int, x: int, y: int) -> int:
        return layer * frame + y * b + x

    # Large capacity for intra-frame edges, per the DIMACS generator:
    # c2 * b^2 where c2 is the top of the inter-frame range.
    big = hi * b * b
    for layer in range(layers):
        for y in range(b):
            for x in range(b):
                u = node(layer, x, y)
                if x + 1 < b:
                    g.add_edge(u, node(layer, x + 1, y), weight=big)
                    g.add_edge(node(layer, x + 1, y), u, weight=big)
                if y + 1 < b:
                    g.add_edge(u, node(layer, x, y + 1), weight=big)
                    g.add_edge(node(layer, x, y + 1), u, weight=big)
        if layer + 1 < layers:
            # a random permutation pairs each node with one node of the
            # next frame, with small random capacity
            targets = list(range(frame))
            rng.shuffle(targets)
            for i in range(frame):
                u = layer * frame + i
                v = (layer + 1) * frame + targets[i]
                g.add_edge(u, v, weight=rng.randint(lo, hi))

    source = 0
    sink = n - 1
    return g, source, sink
