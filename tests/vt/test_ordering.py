"""Tests for domain ordering semantics."""

import pytest

from repro.errors import TimestampError
from repro.vt import Ordering


class TestOrderingProperties:
    def test_unordered_is_not_ordered(self):
        assert not Ordering.UNORDERED.is_ordered

    def test_ordered_variants_are_ordered(self):
        assert Ordering.ORDERED_32.is_ordered
        assert Ordering.ORDERED_64.is_ordered

    def test_timestamp_bits(self):
        assert Ordering.UNORDERED.timestamp_bits == 0
        assert Ordering.ORDERED_32.timestamp_bits == 32
        assert Ordering.ORDERED_64.timestamp_bits == 64

    def test_max_timestamp(self):
        assert Ordering.UNORDERED.max_timestamp == 0
        assert Ordering.ORDERED_32.max_timestamp == 2**32 - 1
        assert Ordering.ORDERED_64.max_timestamp == 2**64 - 1


class TestTimestampValidation:
    def test_unordered_rejects_timestamp(self):
        with pytest.raises(TimestampError):
            Ordering.UNORDERED.validate_timestamp(3)

    def test_unordered_accepts_none(self):
        assert Ordering.UNORDERED.validate_timestamp(None) == 0

    def test_ordered_requires_timestamp(self):
        with pytest.raises(TimestampError):
            Ordering.ORDERED_32.validate_timestamp(None)

    def test_ordered_accepts_valid(self):
        assert Ordering.ORDERED_32.validate_timestamp(7) == 7
        assert Ordering.ORDERED_64.validate_timestamp(2**40) == 2**40

    def test_ordered_rejects_out_of_range(self):
        with pytest.raises(TimestampError):
            Ordering.ORDERED_32.validate_timestamp(2**32)
        with pytest.raises(TimestampError):
            Ordering.ORDERED_32.validate_timestamp(-1)

    def test_ordered_rejects_non_int(self):
        with pytest.raises(TimestampError):
            Ordering.ORDERED_32.validate_timestamp(1.5)
        with pytest.raises(TimestampError):
            Ordering.ORDERED_32.validate_timestamp(True)
