"""Fig. 15b: core-cycle breakdowns for mis, color, msf at the top core
count (flat vs swarm-fg vs fractal).

Paper: flat dominated by aborts (up to 73% in color) and emptiness;
swarm-fg aborts more than fractal (static conflict priority); fractal
spends the most cycles on committed work.
"""

from _common import core_counts, emit, once, run_once
from repro.apps import color, mis, msf
from repro.bench.report import format_table

APPS = [
    ("mis", mis, dict(scale=7, edge_factor=5)),
    ("color", color, dict(scale=6, edge_factor=4)),
    ("msf", msf, dict(scale=6, edge_factor=3)),
]
VARIANTS = ("flat", "swarm", "fractal")


def breakdowns(top, apps=APPS):
    rows = []
    results = {}
    for name, app, params in apps:
        inp = app.make_input(**params)
        for v in VARIANTS:
            run = run_once(app, inp, v, top)
            results[(name, v)] = run
            f = run.stats.breakdown.fractions()
            rows.append([f"{name}-{v}",
                         f"{f['committed']:.1%}", f"{f['aborted']:.1%}",
                         f"{f['spill']:.1%}", f"{f['stall']:.1%}",
                         f"{f['empty']:.1%}",
                         run.stats.tasks_aborted])
    emit(f"fig15b_breakdowns_{top}c",
         format_table(["run", "commit", "abort", "spill", "stall",
                       "empty", "aborted-attempts"], rows),
         runs=results.values())
    return results


def bench_fig15b_breakdowns(benchmark):
    top = max(core_counts(quick=True))
    results = once(benchmark, lambda: breakdowns(top))
    assert results[("mis", "fractal")].stats.tasks_committed > 0


if __name__ == "__main__":
    breakdowns(max(core_counts()))
