"""Tests for the conflict-detection models (Bloom vs precise)."""

import pytest

from repro.mem.conflicts import (
    BloomConflictModel,
    PreciseConflictModel,
    make_conflict_model,
)

from .conftest import FakeOwner


def attach(model, key):
    o = FakeOwner((key,))
    o.read_lines = set()
    o.write_lines = set()
    model.register(o)
    return o


class TestPrecise:
    def test_never_false_conflicts(self):
        model = PreciseConflictModel()
        a, b = attach(model, 1), attach(model, 2)
        for line in range(1000):
            model.note_access(a, line, is_write=True)
            assert model.false_conflict(b, line + 5000, is_write=True) is None

    def test_live_tracking(self):
        model = PreciseConflictModel()
        a = attach(model, 1)
        assert model.live_count == 1
        model.unregister(a)
        assert model.live_count == 0


class TestBloomSampled:
    def test_no_false_conflicts_with_tiny_footprints(self):
        model = BloomConflictModel(bits=2048, ways=8, seed=1)
        a, b = attach(model, 1), attach(model, 2)
        for line in range(4):
            model.note_access(a, line, is_write=True)
        hits = sum(model.false_conflict(b, 10_000 + i, True) is not None
                   for i in range(2000))
        assert hits == 0

    def test_saturated_signature_conflicts_constantly(self):
        model = BloomConflictModel(bits=256, ways=4, seed=1)
        a, b = attach(model, 1), attach(model, 2)
        for line in range(3000):
            model.note_access(a, line, is_write=True)
        hits = sum(model.false_conflict(b, 10**6 + i, True) is not None
                   for i in range(200))
        assert hits > 150
        assert model.false_positives == hits

    def test_alone_never_conflicts(self):
        model = BloomConflictModel(seed=1)
        a = attach(model, 1)
        for line in range(5000):
            model.note_access(a, line, is_write=True)
        assert model.false_conflict(a, 42, True) is None

    def test_unregister_removes_fp_mass(self):
        model = BloomConflictModel(bits=256, ways=4, seed=1)
        a, b = attach(model, 1), attach(model, 2)
        for line in range(3000):
            model.note_access(a, line, is_write=True)
        model.unregister(a)
        hits = sum(model.false_conflict(b, 10**6 + i, True) is not None
                   for i in range(500))
        assert hits == 0


class TestBloomExact:
    def test_exact_probe_finds_aliases(self):
        model = BloomConflictModel(bits=64, ways=2, seed=1, exact=True)
        a, b = attach(model, 1), attach(model, 2)
        for line in range(500):
            model.note_access(a, line, is_write=True)
            a.write_lines.add(line)
        # some unseen line must alias in a 64-bit filter with 500 lines
        hits = sum(model.false_conflict(b, 10**6 + i, True) is not None
                   for i in range(50))
        assert hits > 0

    def test_exact_probe_excludes_true_hits(self):
        model = BloomConflictModel(bits=2048, ways=8, seed=1, exact=True)
        a, b = attach(model, 1), attach(model, 2)
        model.note_access(a, 7, is_write=True)
        a.write_lines.add(7)
        # touching the truly-written line is a true conflict, not false
        assert model.false_conflict(b, 7, True) is None


class TestFactory:
    def test_factory_modes(self):
        assert isinstance(make_conflict_model("precise"), PreciseConflictModel)
        assert isinstance(make_conflict_model("bloom"), BloomConflictModel)
        with pytest.raises(ValueError):
            make_conflict_model("magic")
