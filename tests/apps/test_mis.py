"""Tests for the mis application (paper Sec. 2.3, Listing 1)."""

import pytest

from repro.apps import mis
from repro.errors import AppError
from repro.graphs import random_graph


@pytest.mark.parametrize("variant", ["flat", "fractal", "swarm"])
class TestVariants:
    def test_valid_mis(self, run_checked, variant):
        inp = mis.make_input(scale=5, edge_factor=3)
        run = run_checked(mis, inp, variant)
        assert run.stats.tasks_committed >= inp.n

    def test_serial_matches_semantics(self, run_serial_checked, variant):
        inp = mis.make_input(scale=5, edge_factor=3)
        run_serial_checked(mis, inp, variant)


class TestSwarmDeterminism:
    def test_swarm_is_deterministic(self, run_checked):
        """mis-swarm's total order makes the result deterministic
        (paper footnote 1)."""
        inp = mis.make_input(scale=5, edge_factor=3)
        a = run_checked(mis, inp, "swarm", n_cores=4)
        b = run_checked(mis, inp, "swarm", n_cores=16)
        assert a.handles["state"].snapshot() == b.handles["state"].snapshot()

    def test_swarm_matches_rank_greedy(self, run_checked):
        """The timestamp order is node order, so swarm must produce the
        greedy-by-id independent set."""
        inp = mis.make_input(scale=5, edge_factor=3)
        run = run_checked(mis, inp, "swarm")
        state = run.handles["state"].snapshot()
        want = []
        excluded = set()
        for v in range(inp.n):
            if v not in excluded:
                want.append(v)
                excluded.update(inp.neighbors(v))
        got = [v for v in range(inp.n) if state[v] == mis.INCLUDED]
        assert got == want


class TestEdgeCases:
    def test_edgeless_graph_includes_everything(self, run_checked):
        from repro.graphs import Graph
        g = Graph(10)
        run = run_checked(mis, g, "fractal")
        assert all(s == mis.INCLUDED
                   for s in run.handles["state"].snapshot()[:10])

    def test_complete_graph_single_node(self, run_checked):
        from repro.graphs import Graph
        g = Graph(6)
        for u in range(6):
            for v in range(u + 1, 6):
                g.add_edge(u, v)
        run = run_checked(mis, g, "fractal")
        included = [v for v in range(6)
                    if run.handles["state"].snapshot()[v] == mis.INCLUDED]
        assert len(included) == 1

    def test_check_catches_adjacent_pair(self):
        from repro.graphs import Graph
        g = Graph(2)
        g.add_edge(0, 1)
        fake = {"state": _FakeArray([mis.INCLUDED, mis.INCLUDED])}
        with pytest.raises(AppError):
            mis.check(fake, g)

    def test_check_catches_non_maximal(self):
        from repro.graphs import Graph
        g = Graph(3)
        g.add_edge(0, 1)
        fake = {"state": _FakeArray(
            [mis.EXCLUDED, mis.INCLUDED, mis.EXCLUDED])}
        with pytest.raises(AppError):
            mis.check(fake, g)  # node 2 has no included neighbour


class _FakeArray:
    def __init__(self, values):
        self._values = values

    def snapshot(self):
        return self._values
