"""The coordinator/agent wire protocol (``repro.farm-dist/1``).

Everything that crosses the network between a
:class:`~repro.farm.dist.coordinator.Coordinator` and its agents is a
JSON document checked by one of the validators here — both sides import
this module, so the protocol has exactly one definition.

Message flow::

    agent                                coordinator
      | POST /v1/agents/register           |   -> agent id, ttl, interval
      | POST /v1/agents/{id}/leases        |   -> leased fragments (specs
      |                                    |      inline, index-tagged)
      | POST /v1/agents/{id}/heartbeat     |   -> renews every held lease
      | POST /v1/leases/{lease}/results    |   -> per-job accepted /
      |                                    |      duplicate-suppressed

A *fragment* is the lease unit: the subset of a sweep's jobs whose
digests fall in one deterministic blake2b shard
(:func:`repro.farm.shard.shard_index`), so fragment membership never
depends on delivery order, agent count, or which agent computes it. A
*lease* is one agent's time-bounded claim on one fragment; the ``epoch``
counts how many times the fragment has been (re-)issued, which lets the
coordinator tell a live delivery from a zombie's.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: protocol tag stamped into every coordinator response
DIST_SCHEMA = "repro.farm-dist/1"

#: environment variable holding the shared wire secret; when the
#: coordinator is started with a token, every request must echo it
TOKEN_ENV = "REPRO_DIST_TOKEN"

#: HTTP header the token travels in (constant-time compared server-side)
TOKEN_HEADER = "X-Repro-Token"

#: delivery verdicts, per job (the coordinator's deliver response)
ACCEPTED = "accepted"
DUPLICATE = "duplicate"


class WireError(ValueError):
    """A message failed wire validation (maps to HTTP 400)."""


def _need(doc: dict, key: str, types, what: str):
    if key not in doc:
        raise WireError(f"{what}: missing field {key!r}")
    v = doc[key]
    if not isinstance(v, types) or isinstance(v, bool) and types is int:
        raise WireError(
            f"{what}: field {key!r} must be {types}, got {type(v).__name__}")
    return v


def _opt(doc: dict, key: str, types, default, what: str):
    v = doc.get(key, default)
    if v is default:
        return default
    if not isinstance(v, types):
        raise WireError(
            f"{what}: field {key!r} must be {types}, got {type(v).__name__}")
    return v


# -- agent -> coordinator ----------------------------------------------
def check_register(doc: Any) -> dict:
    """Validate a register request; returns the cleaned document."""
    if not isinstance(doc, dict):
        raise WireError("register: body must be a JSON object")
    return {
        "agent": _opt(doc, "agent", str, "", "register"),
        "capacity": _opt(doc, "capacity", int, 1, "register"),
        "pid": _opt(doc, "pid", int, 0, "register"),
        "host": _opt(doc, "host", str, "", "register"),
    }


def check_acquire(doc: Any) -> dict:
    if not isinstance(doc, dict):
        raise WireError("acquire: body must be a JSON object")
    max_fragments = _opt(doc, "max_fragments", int, 1, "acquire")
    if max_fragments < 1:
        raise WireError("acquire: max_fragments must be >= 1")
    return {"max_fragments": max_fragments}


def check_heartbeat(doc: Any) -> dict:
    if not isinstance(doc, dict):
        raise WireError("heartbeat: body must be a JSON object")
    leases = _opt(doc, "leases", list, [], "heartbeat")
    for lease in leases:
        if not isinstance(lease, str):
            raise WireError("heartbeat: leases must be lease-id strings")
    return {"leases": list(leases)}


def check_deliver(doc: Any) -> dict:
    """Validate a result delivery; returns the cleaned document.

    ``results`` entries carry the job's sweep ``index``, its content
    ``digest`` (cross-checked coordinator-side against the leased spec),
    and either ``stats`` (RunStats JSON) or ``error``.
    """
    if not isinstance(doc, dict):
        raise WireError("deliver: body must be a JSON object")
    out = {
        "agent": _need(doc, "agent", str, "deliver"),
        "sweep": _need(doc, "sweep", str, "deliver"),
        "fragment": _need(doc, "fragment", int, "deliver"),
        "epoch": _need(doc, "epoch", int, "deliver"),
        "results": [],
    }
    results = _need(doc, "results", list, "deliver")
    for i, r in enumerate(results):
        what = f"deliver.results[{i}]"
        if not isinstance(r, dict):
            raise WireError(f"{what}: must be an object")
        stats = _opt(r, "stats", dict, None, what)
        error = _opt(r, "error", str, None, what)
        if stats is None and error is None:
            raise WireError(f"{what}: needs stats or error")
        out["results"].append({
            "index": _need(r, "index", int, what),
            "digest": _need(r, "digest", str, what),
            "stats": stats,
            "error": error,
            "wall_ms": _opt(r, "wall_ms", int, 0, what),
            "attempts": _opt(r, "attempts", int, 1, what),
        })
    return out


def check_submit_sweep(doc: Any) -> dict:
    """Validate a sweep submission: a list of JobSpec wire documents.

    The job documents themselves are validated by the shared
    :func:`repro.farm.validate.validate_jobspec` coordinator-side (and
    again agent-side before execution) — this only checks the envelope.
    """
    if not isinstance(doc, dict):
        raise WireError("sweep: body must be a JSON object")
    jobs = _need(doc, "jobs", list, "sweep")
    if not jobs:
        raise WireError("sweep: jobs must be non-empty")
    for i, job in enumerate(jobs):
        if not isinstance(job, dict):
            raise WireError(f"sweep: jobs[{i}] must be an object")
    fragments = _opt(doc, "fragments", int, 0, "sweep")
    if fragments < 0:
        raise WireError("sweep: fragments must be >= 0")
    return {"jobs": list(jobs), "fragments": fragments,
            "label": _opt(doc, "label", str, "", "sweep")}


# -- coordinator -> agent ----------------------------------------------
def lease_doc(lease_id: str, sweep_id: str, fragment: int, epoch: int,
              jobs: List[Dict[str, Any]]) -> dict:
    """One granted lease as shipped to the agent (specs inline)."""
    return {"lease": lease_id, "sweep": sweep_id, "fragment": fragment,
            "epoch": epoch, "jobs": jobs}


def check_lease(doc: Any) -> dict:
    """Agent-side validation of one granted lease document."""
    if not isinstance(doc, dict):
        raise WireError("lease: must be a JSON object")
    out = {
        "lease": _need(doc, "lease", str, "lease"),
        "sweep": _need(doc, "sweep", str, "lease"),
        "fragment": _need(doc, "fragment", int, "lease"),
        "epoch": _need(doc, "epoch", int, "lease"),
        "jobs": [],
    }
    for i, job in enumerate(_need(doc, "jobs", list, "lease")):
        what = f"lease.jobs[{i}]"
        if not isinstance(job, dict):
            raise WireError(f"{what}: must be an object")
        out["jobs"].append({
            "index": _need(job, "index", int, what),
            "spec": _need(job, "spec", dict, what),
        })
    if not out["jobs"]:
        raise WireError("lease: jobs must be non-empty")
    return out
