"""Post-run serializability auditing.

Fractal guarantees that the committed execution is equivalent to *some*
serial order consistent with domain semantics — concretely, the commit
order the GVT protocol produced. The auditor replays the committed tasks'
recorded reads and writes in commit order against the initial memory image
and checks that

1. every value a committed task read is exactly the value the replay holds
   at that point (no committed task ever saw doomed speculative data), and
2. the replayed final memory equals the simulator's final memory.

This is a strong end-to-end checker: any versioning, forwarding, rollback,
ordering, zooming, or commit bug the simulator could make that affects
architectural state shows up here. It runs in O(total accesses).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

from ..errors import SerializabilityViolation


def audit_serializability(initial: Dict[int, Any], commit_log: Iterable,
                          final_values: Dict[int, Any],
                          default: Any = 0) -> int:
    """Verify a run; returns the number of committed tasks checked.

    ``commit_log`` holds committed task descriptors (with ``commit_seq``,
    ``reads`` — the first value read per address before any own write —
    and ``writes`` — the last value written per address).
    """
    mem = dict(initial)
    n = 0
    for task in sorted(commit_log, key=lambda t: t.commit_seq):
        n += 1
        for addr, seen in task.reads.items():
            have = mem.get(addr, default)
            if have is not seen and have != seen:
                raise SerializabilityViolation(
                    f"committed task {task!r} (commit #{task.commit_seq}) "
                    f"read {seen!r} at address {addr}, but the serial replay "
                    f"holds {have!r}")
        for addr, value in task.writes.items():
            mem[addr] = value
    for addr in set(mem) | set(final_values):
        replayed = mem.get(addr, default)
        actual = final_values.get(addr, default)
        if replayed is not actual and replayed != actual:
            raise SerializabilityViolation(
                f"final memory mismatch at address {addr}: replay has "
                f"{replayed!r}, simulator has {actual!r}")
    return n
