"""Fig. 1: execution timelines of maxflow-flat vs maxflow-fractal.

The flat version's monolithic global-relabel tasks occupy one core for a
long stretch while conflicting work aborts around them; the fractal
version fills all cores with fine-grain BFS tasks. The bench renders both
timelines (ASCII) and checks the load-balance signature: the busiest-core
share of committed cycles must be flatter in the fractal version.
"""

from _common import emit, once, run_once
from repro.apps import maxflow
from repro.core.trace import render_timeline

N_CORES = 8


def run_traced(variant):
    # live=True: this bench renders the per-core trace, which only exists
    # on an in-process simulator — never served from the result cache
    inp = maxflow.make_input(b=4, layers=4)
    return run_once(maxflow, inp, variant, N_CORES, live=True,
                    enable_trace=True)


def longest_task(run):
    return max((s.end - s.start) for s in run.handles["_sim"].trace.segments)


def render(run, variant):
    sim = run.handles["_sim"]
    return (f"maxflow-{variant}: makespan {run.makespan:,} cycles, "
            f"{run.stats.tasks_aborted} aborted attempts\n"
            + render_timeline(sim.trace, n_cores=N_CORES, width=100,
                              glyphs={"active": ".", "bfs": "o",
                                      "global_relabel": "G", "init": "i"}))


def bench_fig01_timelines(benchmark):
    def job():
        flat = run_traced("flat")
        fractal = run_traced("fractal")
        emit("fig01_timelines",
             render(flat, "flat") + "\n\n" + render(fractal, "fractal"))
        return flat, fractal

    flat, fractal = once(benchmark, job)
    # the flat version must contain much longer tasks (global relabels)
    assert longest_task(flat) > 4 * longest_task(fractal)


if __name__ == "__main__":
    flat = run_traced("flat")
    fractal = run_traced("fractal")
    emit("fig01_timelines",
         render(flat, "flat") + "\n\n" + render(fractal, "fractal"))
