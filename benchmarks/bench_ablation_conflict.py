"""Ablation: conflict detection scheme (Bloom filter size vs precise).

DESIGN.md calls out the 2 Kbit 8-way H3 Bloom filters as the mechanism
that punishes coarse tasks (Sec. 6.1). This ablation sweeps the filter
size on maxflow-flat (large footprints) and maxflow-fractal (tiny
footprints): smaller filters must hurt flat progressively while leaving
fractal nearly untouched.
"""

from _common import core_counts, emit, once, run_once
from repro.apps import maxflow
from repro.bench.report import format_table
from repro.config import SystemConfig
from repro.bench.harness import run_app

SIZES = (256, 1024, 2048)


def sweep(n_cores):
    inp = maxflow.make_input(b=4, layers=4)
    results = {}
    rows = []
    for variant in ("flat", "fractal"):
        row = [variant]
        for bits in SIZES:
            cfg = SystemConfig.with_cores(n_cores, conflict_mode="bloom",
                                          bloom_bits=bits)
            run = run_app(maxflow, inp, variant=variant, n_cores=n_cores,
                          config=cfg)
            results[(variant, bits)] = run
            row.append(f"{run.makespan:,}")
        precise = run_once(maxflow, inp, variant, n_cores,
                           conflict_mode="precise")
        results[(variant, "precise")] = precise
        row.append(f"{precise.makespan:,}")
        rows.append(row)
    emit(f"ablation_conflict_{n_cores}c", format_table(
        ["variant"] + [f"bloom-{b}b" for b in SIZES] + ["precise"], rows))
    return results


def bench_ablation_conflict(benchmark):
    n = max(core_counts(quick=True))
    results = once(benchmark, lambda: sweep(n))
    # tiny filters must cost flat more false positives than fractal
    flat_fp = results[("flat", 256)].stats.false_positive_conflicts
    frac_fp = results[("fractal", 256)].stats.false_positive_conflicts
    assert flat_fp >= frac_fp


if __name__ == "__main__":
    sweep(max(core_counts()))
