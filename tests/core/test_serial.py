"""Tests for the serial reference executor and simulator differential
checks."""

import pytest

from repro import Ordering, SerialExecutor, Simulator, SystemConfig
from repro.errors import DomainError, SimulationError


class TestSerialExecution:
    def test_runs_tasks(self):
        host = SerialExecutor()
        cell = host.cell("c", 0)
        host.enqueue_root(lambda ctx: cell.set(ctx, 7))
        host.run()
        assert cell.peek() == 7

    def test_ordered_root_respects_timestamps(self):
        host = SerialExecutor(root_ordering=Ordering.ORDERED_32)
        log = host.array("log", 4)
        pos = host.cell("pos", 0)

        def t(ctx, i):
            p = pos.get(ctx)
            log.set(ctx, p, i)
            pos.set(ctx, p + 1)

        for i in (3, 1, 0, 2):
            host.enqueue_root(t, i, ts=i)
        host.run()
        assert log.snapshot() == [0, 1, 2, 3]

    def test_children_after_parents(self):
        host = SerialExecutor()
        log = host.array("log", 3)
        pos = host.cell("pos", 0)

        def mark(ctx, tag):
            p = pos.get(ctx)
            log.set(ctx, p, tag)
            pos.set(ctx, p + 1)

        def parent(ctx):
            mark(ctx, "p")
            ctx.enqueue(mark, "c")

        host.enqueue_root(parent)
        host.enqueue_root(mark, "x")
        host.run()
        snap = log.snapshot()
        assert snap.index("p") < snap.index("c")

    def test_subdomain_tasks_follow_creator(self):
        host = SerialExecutor()
        log = []

        def leaf(ctx, tag):
            log.append(tag)

        def creator(ctx):
            log.append("creator")
            ctx.create_subdomain(Ordering.UNORDERED)
            ctx.enqueue_sub(leaf, "sub")

        host.enqueue_root(creator)
        host.enqueue_root(leaf, "later")
        host.run()
        assert log.index("creator") < log.index("sub")

    def test_subdomain_atomic_before_later_root_task(self):
        """Subdomain tasks run immediately after their creator, before any
        later root task — the serial executor realizes the VT order."""
        host = SerialExecutor()
        log = []

        def leaf(ctx, tag):
            log.append(tag)

        def creator(ctx):
            ctx.create_subdomain(Ordering.UNORDERED)
            ctx.enqueue_sub(leaf, "sub1")
            ctx.enqueue_sub(leaf, "sub2")

        host.enqueue_root(creator)
        host.enqueue_root(leaf, "outside")
        host.run()
        assert log == ["sub1", "sub2", "outside"]

    def test_unbounded_nesting(self):
        host = SerialExecutor()
        depths = []

        def node(ctx, depth):
            depths.append(depth)
            if depth < 10:
                ctx.create_subdomain(Ordering.UNORDERED)
                ctx.enqueue_sub(node, depth + 1)

        host.enqueue_root(node, 0)
        host.run()
        assert depths == list(range(11))

    def test_cycle_accounting(self):
        host = SerialExecutor()
        cell = host.cell("c", 0)
        host.enqueue_root(lambda ctx: (cell.set(ctx, 1),
                                       ctx.compute(500))[-1])
        host.run()
        assert host.cycles >= 500
        assert host.tasks_executed == 1

    def test_run_twice_rejected(self):
        host = SerialExecutor()
        host.run()
        with pytest.raises(SimulationError):
            host.run()

    def test_domain_rules_enforced(self):
        host = SerialExecutor()
        errors = []

        def t(ctx):
            try:
                ctx.enqueue_sub(lambda c: None)
            except DomainError as e:
                errors.append(e)

        host.enqueue_root(t)
        host.run()
        assert errors


class TestDifferential:
    """For order-deterministic programs, the speculative simulator must
    produce exactly the serial executor's final memory."""

    def _program(self, host):
        arr = host.array("arr", 16)
        acc = host.cell("acc", 0)

        def leaf(ctx, i):
            arr.set(ctx, i, acc.add(ctx, i))

        def txn(ctx, base):
            ctx.create_subdomain(Ordering.ORDERED_32)
            for k in range(4):
                ctx.enqueue_sub(leaf, base + k, ts=k)

        for b in (0, 4, 8, 12):
            host.enqueue_root(txn, b, ts=b)
        return arr, acc

    def test_sim_matches_serial(self):
        serial = SerialExecutor(root_ordering=Ordering.ORDERED_32)
        s_arr, s_acc = self._program(serial)
        serial.run()

        sim = Simulator(SystemConfig.with_cores(16, conflict_mode="precise"),
                        root_ordering=Ordering.ORDERED_32)
        p_arr, p_acc = self._program(sim)
        sim.run()
        sim.audit()

        assert p_arr.snapshot() == s_arr.snapshot()
        assert p_acc.peek() == s_acc.peek()
