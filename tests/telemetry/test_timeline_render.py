"""Edge-case tests for the ASCII timeline renderer (paper Fig. 1 style).

The trace these tests render is exactly what the telemetry
:class:`~repro.telemetry.timeline.TraceBuilder` produces from the event
stream, so the cases cover both the renderer and the builder.
"""

from repro.core.trace import Trace, render_timeline
from repro.telemetry import EventBus
from repro.telemetry.events import AbortEvent, CommitEvent
from repro.telemetry.timeline import TraceBuilder


def _rows(text):
    """Per-core glyph strings between the | markers."""
    return [line.split("|")[1] for line in text.splitlines()[1:]]


class TestRenderTimeline:
    def test_empty_trace(self):
        assert render_timeline(Trace(), n_cores=4) == "(empty trace)"

    def test_single_cycle_segment_gets_one_column(self):
        # sub-column segments are clamped to >= 1 glyph instead of vanishing
        trace = Trace()
        trace.record(0, 0, 100, "a", "committed")
        trace.record(0, 100, 101, "b", "committed")
        out = render_timeline(trace, n_cores=1, width=10)
        row = _rows(out)[0]
        assert row.count("b") == 1
        assert len(row) == 10

    def test_lone_single_cycle_segment_fills_width(self):
        trace = Trace()
        trace.record(0, 5, 6, "a", "committed")
        out = render_timeline(trace, n_cores=1, width=10)
        assert _rows(out)[0] == "a" * 10

    def test_zero_length_segments_are_dropped_on_record(self):
        trace = Trace()
        trace.record(0, 5, 5, "a", "committed")
        assert len(trace) == 0
        assert render_timeline(trace, n_cores=1) == "(empty trace)"

    def test_window_clipping(self):
        trace = Trace()
        trace.record(0, 0, 10, "a", "committed")
        trace.record(0, 90, 100, "b", "committed")
        trace.record(0, 45, 55, "c", "committed")
        out = render_timeline(trace, n_cores=1, width=10, t0=40, t1=60)
        row = _rows(out)[0]
        # only the in-window segment renders; the others are clipped away
        assert "c" in row
        assert "a" not in row and "b" not in row
        assert "time 40 .. 60" in out.splitlines()[0]

    def test_segment_straddling_window_edge_is_clamped(self):
        trace = Trace()
        trace.record(0, 0, 100, "a", "committed")
        out = render_timeline(trace, n_cores=1, width=10, t0=50, t1=60)
        assert _rows(out)[0] == "a" * 10

    def test_custom_glyph_map(self):
        trace = Trace()
        trace.record(0, 0, 10, "relabel", "committed")
        trace.record(0, 10, 20, "push", "committed")
        out = render_timeline(trace, n_cores=1, width=20,
                              glyphs={"relabel": "G"})
        row = _rows(out)[0]
        assert "G" in row          # mapped label
        assert "p" in row          # unmapped label falls back to first letter
        assert "r" not in row

    def test_aborted_marks_x_regardless_of_glyphs(self):
        trace = Trace()
        trace.record(0, 0, 10, "task", "aborted")
        out = render_timeline(trace, n_cores=1, width=10,
                              glyphs={"task": "T"})
        assert _rows(out)[0] == "x" * 10

    def test_idle_cores_render_blank_rows(self):
        trace = Trace()
        trace.record(0, 0, 10, "a", "committed")
        out = render_timeline(trace, n_cores=3, width=10)
        rows = _rows(out)
        assert rows[1] == " " * 10
        assert rows[2] == " " * 10


class TestTraceBuilder:
    def test_builds_trace_from_commit_and_abort_events(self):
        trace = Trace()
        bus = EventBus()
        bus.subscribe(TraceBuilder(trace))
        bus.emit(CommitEvent(40, 1, "work", core=0, start=10, duration=30,
                             depth=1))
        bus.emit(AbortEvent(55, 2, "work", core=1, start=20, executed=35,
                            reason="write conflict", parked=False,
                            cascade=1, hop=0))
        assert len(trace) == 2
        seg = trace.segments[0]
        assert (seg.core, seg.start, seg.end, seg.outcome) == \
            (0, 10, 40, "committed")
        seg = trace.segments[1]
        assert (seg.core, seg.start, seg.end, seg.outcome) == \
            (1, 20, 55, "aborted")

    def test_parked_and_coreless_aborts_are_skipped(self):
        trace = Trace()
        bus = EventBus()
        bus.subscribe(TraceBuilder(trace))
        bus.emit(AbortEvent(55, 2, "work", core=1, start=20, executed=35,
                            reason="zoom-in park", parked=True,
                            cascade=-1, hop=0))
        bus.emit(AbortEvent(60, 3, "work", core=None, start=0, executed=0,
                            reason="squash", parked=False, cascade=2, hop=1))
        assert len(trace) == 0
