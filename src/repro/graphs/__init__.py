"""Deterministic graph generators for the paper's workloads (Table 3).

- :func:`rmat` — R-MAT power-law graphs (mis; stands in for kron_g500 in msf
  and com-youtube in color at toy scale).
- :func:`rmf_wide` — layered DIMACS "rmf" maxflow networks (maxflow).
- :func:`grid3d` — 3D grids (labyrinth).
- :func:`random_graph` — Erdos-Renyi-style graphs for tests.

All generators are seeded and return :class:`Graph` (plain CSR-style
adjacency, independent of the simulator).
"""

from .graph import Graph
from .rmat import rmat
from .rmf import rmf_wide
from .generators import grid3d, random_graph

__all__ = ["Graph", "rmat", "rmf_wide", "grid3d", "random_graph"]
