"""Fractal domains (paper Sec. 3).

A :class:`Domain` is a scope for tasks with common ordering semantics.
The *root domain* is created with the program; every other domain is
created by exactly one task (its *creator*) via ``create_subdomain``, and
— together with that creator — appears to execute as one atomic unit.

Domain objects are bookkeeping only: the ordering guarantees are enforced
entirely by fractal-VT construction. A task attempt that aborts discards
the subdomain it created (the re-execution creates a fresh one), which is
why domains hang off task *attempts* rather than tasks.
"""

from __future__ import annotations

from typing import Optional

from ..errors import DomainError
from ..vt import Ordering


class Domain:
    """One node of the domain tree."""

    __slots__ = ("ordering", "creator", "parent", "depth",
                 "tasks_created", "tasks_committed")

    def __init__(self, ordering: Ordering, creator=None,
                 parent: Optional["Domain"] = None):
        self.ordering = ordering
        self.creator = creator          # TaskDesc or None for the root
        self.parent = parent            # Domain or None for the root
        #: VT depth of tasks living in this domain (root = 1)
        self.depth = 1 if parent is None else parent.depth + 1
        self.tasks_created = 0
        self.tasks_committed = 0

    @property
    def is_root(self) -> bool:
        """True for the program's root domain."""
        return self.parent is None

    def require_super(self) -> "Domain":
        """The superdomain; raises :class:`DomainError` at the root."""
        if self.parent is None:
            raise DomainError("the root domain has no superdomain")
        return self.parent

    def validate_child_timestamp(self, parent_ts: Optional[int],
                                 child_ts: Optional[int]) -> int:
        """Check a same-domain enqueue's timestamp (child ts >= parent ts)."""
        ts = self.ordering.validate_timestamp(child_ts)
        if (self.ordering.is_ordered and parent_ts is not None
                and ts < parent_ts):
            raise DomainError(
                f"child timestamp {ts} precedes parent timestamp "
                f"{parent_ts} in the same domain")
        return ts

    def __repr__(self) -> str:
        who = "root" if self.is_root else f"sub-of:{self.creator}"
        return f"Domain({self.ordering.value}, depth={self.depth}, {who})"
