"""RunStats serialization must be lossless and picklable.

The repro.farm cache and worker pool both depend on it: cached results
are rebuilt with ``from_dict(to_dict(s))`` and pool results cross a
process boundary via pickle. Any field that doesn't round trip would
silently desynchronize parallel sweeps from serial ones.
"""

import json
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import CycleBreakdown, RunStats

counts = st.integers(min_value=0, max_value=2**40)

breakdowns = st.builds(CycleBreakdown, committed=counts, aborted=counts,
                       spill=counts, stall=counts, empty=counts)

failures = st.one_of(
    st.none(),
    st.fixed_dictionaries({"limit": st.sampled_from(
        ["max_cycles", "wall_clock", "livelock"]),
        "cycle": counts,
        "tasks_left": counts}))

stats_objects = st.builds(
    RunStats,
    name=st.text(min_size=1, max_size=20),
    n_cores=st.integers(min_value=1, max_value=1024),
    makespan=counts,
    breakdown=breakdowns,
    tasks_committed=counts, tasks_aborted=counts, tasks_squashed=counts,
    tasks_spilled=counts, enqueues=counts,
    domains_created=counts, domains_flattened=counts,
    max_depth=st.integers(min_value=1, max_value=64),
    true_conflicts=counts, false_positive_conflicts=counts,
    faults_injected=counts, exec_fault_retries=counts,
    backoff_requeues=counts, safe_mode_entries=counts,
    zoom_ins=counts, zoom_outs=counts,
    tiebreaker_wraparounds=counts, gvt_ticks=counts,
    cache=st.dictionaries(st.sampled_from(
        ["hits", "misses", "evictions", "spills"]), counts, max_size=4),
    failure=failures)


@settings(max_examples=200, deadline=None)
@given(stats_objects)
def test_dict_roundtrip_is_lossless(stats):
    assert RunStats.from_dict(stats.to_dict()) == stats


@settings(max_examples=100, deadline=None)
@given(stats_objects)
def test_json_roundtrip_is_lossless(stats):
    wire = json.dumps(stats.to_dict(), sort_keys=True)
    assert RunStats.from_dict(json.loads(wire)) == stats


@settings(max_examples=100, deadline=None)
@given(stats_objects)
def test_pickle_roundtrip_is_lossless(stats):
    assert pickle.loads(pickle.dumps(stats)) == stats


@settings(max_examples=100, deadline=None)
@given(stats_objects)
def test_digest_stable_across_roundtrip(stats):
    from repro.farm import stable_digest
    rebuilt = RunStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert stable_digest(rebuilt.to_dict()) == stable_digest(stats.to_dict())


def test_completed_tracks_failure_field():
    assert RunStats().completed
    partial = RunStats(failure={"limit": "wall_clock", "cycle": 10})
    assert not partial.completed
    assert not RunStats.from_dict(partial.to_dict()).completed
