"""TransportChaos: deterministic, scripted message faults."""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.faults.chaos import (CHAOS_ENV, ChaosDrop, TransportChaos,
                                classify_op, kill_after, wait_until)

HB = ("POST", "/v1/agents/w1/heartbeat")
DELIVER = ("POST", "/v1/leases/lease-1/results")


class TestClassify:
    def test_op_classes(self):
        assert classify_op(*HB) == "heartbeat"
        assert classify_op(*DELIVER) == "deliver"
        assert classify_op("POST", "/v1/agents/w1/leases") == "acquire"
        assert classify_op("POST", "/v1/agents/register") == "register"
        assert classify_op("GET", "/healthz") == "other"


class TestScript:
    def test_drop_by_ordinal(self):
        chaos = TransportChaos({"drop": {"heartbeat": [2]}})
        chaos(*HB)                          # ordinal 1 passes
        with pytest.raises(ChaosDrop) as exc:
            chaos(*HB)                      # ordinal 2 dropped
        assert exc.value.ordinal == 2
        chaos(*HB)                          # ordinal 3 passes
        assert chaos.n_dropped == 1

    def test_partition_window(self):
        chaos = TransportChaos({"partition": {"heartbeat": [2, 3]}})
        chaos(*HB)
        for _ in range(2):
            with pytest.raises(ChaosDrop):
                chaos(*HB)
        chaos(*HB)                          # window over

    def test_ordinals_are_per_op_class(self):
        chaos = TransportChaos({"drop": {"heartbeat": [1]}})
        chaos(*DELIVER)                     # deliver #1: unaffected
        with pytest.raises(ChaosDrop):
            chaos(*HB)                      # heartbeat #1: dropped

    def test_delay_uses_injected_sleep(self):
        sleeps = []
        chaos = TransportChaos({"delay_ms": {"deliver": 250}},
                               sleep=sleeps.append)
        chaos(*DELIVER)
        assert sleeps == [0.25]
        assert chaos.n_delayed == 1

    def test_drop_rate_is_seeded_and_deterministic(self):
        def outcomes(seed):
            chaos = TransportChaos({"seed": seed,
                                    "drop_rate": {"heartbeat": 0.5}})
            out = []
            for _ in range(40):
                try:
                    chaos(*HB)
                    out.append(False)
                except ChaosDrop:
                    out.append(True)
            return out

        a, b, c = outcomes(7), outcomes(7), outcomes(8)
        assert a == b                       # same seed, same script
        assert a != c                       # seed moves the coin
        assert any(a) and not all(a)        # rate 0.5 drops some

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            TransportChaos({"explode": True})
        with pytest.raises(ConfigError):
            TransportChaos({"drop": {"no-such-op": [1]}})

    def test_summary(self):
        chaos = TransportChaos({"drop": {"heartbeat": [1]}})
        with pytest.raises(ChaosDrop):
            chaos(*HB)
        assert chaos.summary() == {"dropped": 1, "delayed": 0,
                                   "ordinals": {"heartbeat": 1}}


class TestFromEnv:
    def test_unset_means_no_chaos(self):
        assert TransportChaos.from_env(env={}) is None
        assert TransportChaos.from_env(env={CHAOS_ENV: "  "}) is None

    def test_json_spec(self):
        env = {CHAOS_ENV: json.dumps({"drop": {"heartbeat": [1]}})}
        chaos = TransportChaos.from_env(env=env)
        with pytest.raises(ChaosDrop):
            chaos(*HB)

    def test_bad_json_is_config_error(self):
        with pytest.raises(ConfigError):
            TransportChaos.from_env(env={CHAOS_ENV: "{nope"})


class TestKillAfter:
    def test_kills_a_real_process(self):
        proc = subprocess.Popen([sys.executable, "-c",
                                 "import time; time.sleep(60)"])
        kill_after(proc.pid, 0.05)
        assert wait_until(lambda: proc.poll() is not None, timeout_s=10)
        assert proc.returncode == -signal.SIGKILL

    def test_cancel_calls_it_off(self):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        timer = kill_after(proc.pid, 30.0)
        timer.cancel()
        proc.wait(timeout=10)
        assert proc.returncode == 0

    def test_dead_pid_is_ignored(self):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait(timeout=10)
        timer = kill_after(proc.pid, 0.0)
        timer.join(timeout=5)               # must not raise in the timer
