#!/usr/bin/env python
"""Assemble the measured-results section of EXPERIMENTS.md from
benchmarks/results/ (run after the bench suite).

Benches that pass ``runs=`` to :func:`_common.emit` persist a structured
``{stem}.json`` (one ``RunStats.to_dict()`` per run) next to the text
table; those sections are rebuilt here from the data via
``RunStats.from_dict`` — no text scraping. Sections without a JSON file
fall back to the stored text table verbatim.
"""

import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
RESULTS = HERE / "results"
EXPERIMENTS = HERE.parent / "EXPERIMENTS.md"

sys.path.insert(0, str(HERE.parent / "src"))

from repro.bench.report import format_table  # noqa: E402
from repro.core.stats import RunStats  # noqa: E402

#: result file stem -> (section title, paper context line)
SECTIONS = {
    "table2_config": (
        "Table 2 — system configuration",
        "Paper: 256 cores / 64 tiles, 16384 task-queue and 4096 "
        "commit-queue entries, 128-bit fractal VTs, 2 Kbit 8-way Bloom, "
        "GVT every 200 cycles. Asserted equal."),
    "table3_inputs": (
        "Table 3 — benchmarks, inputs, 1-core run times",
        "Paper inputs are 100-1000x larger (0.7-16.7 B cycles at 1 core); "
        "reproduction-scale inputs and their measured 1-core cycles:"),
    "table4_task_lengths": (
        "Table 4 — flat/fractal vs serial, task lengths, nesting",
        "Paper: fractal tasks are 10-70,000x shorter than flat ones "
        "(maxflow 3260 -> 373 cycles; labyrinth 16 M -> 220; mis 162 -> "
        "115), at a modest 1-core cost."),
    "fig01_timelines": (
        "Fig. 1 — execution timelines (maxflow)",
        "Paper Fig. 1: flat's long global-relabel tasks serialize the "
        "chip; fractal's nested BFS fills it. 'G' = global relabel, "
        "'.' = active-node task, 'o' = nested BFS task, 'x' = aborted:"),
    "fig03_maxflow_speedup": (
        "Fig. 3 — maxflow speedup",
        "Paper at 256c: flat 4.9x, fractal 322x (over 1-core flat)."),
    "fig04_silo_speedup": (
        "Fig. 4 — silo speedup",
        "Paper at 256c: flat 9.7x, swarm within 4.5% of fractal 206x."),
    "fig06_mis_speedup": (
        "Fig. 6 — mis speedup",
        "Paper at 256c: flat 98x, swarm 117x, fractal 145x. At this "
        "reproduction's 16-core/128-node scale the fine-grain variants "
        "already beat flat, but swarm's deterministic order wins over "
        "fractal — the over-serialization penalty the paper measures "
        "grows with core count and graph size (the reproduced signal is "
        "fine-grain >> flat)."),
    "fig14a_nested_speedups": (
        "Fig. 14a — nested-parallelism apps, Bloom vs precise",
        "Paper at 256c: flat <= 4.9x (Bloom) / <= 6.8x (precise); "
        "fractal 88x-322x, identical under both schemes."),
    "fig14b_breakdowns_16c": (
        "Fig. 14b — cycle breakdowns (nested apps)",
        "Paper: flat dominated by aborts/stalls/emptiness; fractal "
        "mostly committed (aborts 7-24%)."),
    "fig15a_overserialization": (
        "Fig. 15a — mis/color/msf: flat vs swarm-fg vs fractal",
        "Paper at 256c: fractal (145x/126x/40x) > swarm-fg "
        "(117x/119x/21x) > flat (98x/74x/9.3x). At 16 cores and toy "
        "graphs the fine-grain decompositions pay their per-task "
        "overheads without enough cores to recoup (the paper itself "
        "notes they underperform flat at small core counts, Sec. 6.2); "
        "mis shows the fine-grain win, msf shows fractal > swarm-fg."),
    "fig15b_breakdowns_16c": (
        "Fig. 15b — cycle breakdowns (over-serialization apps)",
        "Paper: swarm-fg's static conflict priority causes more aborted "
        "work than fractal's dynamic tiebreakers — reproduced on msf "
        "(3.6 k vs 3.4 k aborted attempts, higher committed share); on "
        "the toy mis/color graphs raw contention dominates both."),
    "fig16_zooming_1c": (
        "Fig. 16a — zooming overheads (1 core)",
        "Paper: worst case 21% slowdown at F=4, D=2; overhead shrinks as "
        "F or D grows. Cells: makespan relative to the no-zooming depth "
        "(z = zoom-ins)."),
    "fig16_zooming_16c": (
        "Fig. 16b — zooming overheads (parallel)",
        "Paper: at 256c, small D also costs parallelism; F >= 8 with "
        "D >= 4 keeps overheads small."),
    "fig17_stamp_16c": (
        "Fig. 17 — STAMP feature ladder",
        "Paper at 256c: all eight scale with the full stack (gmean 177x); "
        "HW queues rescue intruder/yada, hints rescue genome/kmeans, "
        "nesting rescues labyrinth/bayes."),
    "swarm_suite_scaling": (
        "Sec. 6.4 — the remaining Swarm suite",
        "Paper: bfs/sssp/astar/des/nocsim \"already use fine-grain tasks "
        "and scale well\" with no nesting opportunities."),
    "ablation_conflict_16c": (
        "Ablation — Bloom filter size",
        "Smaller filters hurt coarse (flat) tasks progressively; "
        "fine-grain fractal tasks are insensitive."),
    "ablation_hints_16c": (
        "Ablation — spatial hints",
        "Hints help the locality-bound apps (genome); at toy scale some "
        "apps prefer round-robin spreading."),
    "ablation_queues_16c": (
        "Ablation — queue capacities",
        "Constrained queues surface spills and stalls; the paper "
        "configuration sits at zero."),
    "ablation_gvt_16c": (
        "Ablation — GVT commit interval",
        "The paper's 200-cycle interval sits on the flat part of the "
        "curve; very long intervals stall commits."),
    "ablation_flatten_16c": (
        "Ablation — flattening unnecessary nesting (Sec. 6.3 future work)",
        "Flattening decomposition-only subdomains removes zooming."),
}


def _matching(stem, suffix=".txt"):
    """The result file for ``stem``, or its per-subset tagged variants
    (the quick pytest benches emit e.g. fig17_stamp_16c_nesting.txt)."""
    exact = RESULTS / f"{stem}{suffix}"
    if exact.exists():
        return [exact]
    return sorted(RESULTS.glob(f"{stem}_*{suffix}"))


def _render_runs_json(path):
    """Rebuild a breakdown table from a structured {stem}.json export.

    Every row is recomputed from ``RunStats.from_dict`` — the numbers come
    from the run's metrics registry, not from the stored text table.
    """
    doc = json.loads(path.read_text())
    rows = []
    for entry in doc.get("runs", []):
        stats = RunStats.from_dict(entry["stats"])
        f = stats.breakdown.fractions()
        rows.append([
            f"{entry['app']}-{entry['variant']}", f"{entry['n_cores']}c",
            f"{stats.makespan:,}",
            f"{f['committed']:.1%}", f"{f['aborted']:.1%}",
            f"{f['spill']:.1%}", f"{f['stall']:.1%}", f"{f['empty']:.1%}",
            stats.tasks_committed, stats.tasks_aborted,
        ])
    return format_table(
        ["run", "cores", "makespan", "commit", "abort", "spill", "stall",
         "empty", "committed", "aborted-attempts"], rows)


def main():
    text = EXPERIMENTS.read_text()
    marker = "<!-- RESULTS -->"
    head = text.split(marker)[0] + marker + "\n"
    parts = [head]
    found = 0
    for stem, (title, context) in SECTIONS.items():
        paths = _matching(stem)
        json_paths = _matching(stem, suffix=".json")
        parts.append(f"\n### {title}\n\n{context}\n")
        if paths:
            found += 1
            body = "\n\n".join(p.read_text().rstrip() for p in paths)
            parts.append("\n```\n" + body + "\n```\n")
            if json_paths:
                body = "\n\n".join(_render_runs_json(p) for p in json_paths)
                parts.append(
                    "\nRegenerated from the structured metrics-JSON export "
                    "(`RunStats.from_dict`, no text scraping):\n"
                    "\n```\n" + body + "\n```\n")
        else:
            parts.append("\n*(not yet generated — run the bench suite)*\n")
    EXPERIMENTS.write_text("".join(parts))
    print(f"wrote {EXPERIMENTS} with {found} of {len(SECTIONS)} sections")


if __name__ == "__main__":
    main()
