"""Crash bundles: building, writing, validating, and the CLI validator."""

import json

import pytest

from repro.errors import TaskExecutionError
from repro.faults import FaultPlan
from repro.faults.crashdump import (CRASH_BUNDLE_SCHEMA, build_crash_bundle,
                                    main, validate_crash_bundle,
                                    write_crash_bundle)

from .conftest import build_counter_sim


def _crashed_sim(tmp_path):
    """A simulator that just died on an injected fatal task exception."""
    plan = FaultPlan(seed=1, task_exception_rate=1.0)
    sim = build_counter_sim(
        4, 4, sim_kwargs=dict(faults=plan, crash_dump_dir=str(tmp_path)))
    with pytest.raises(TaskExecutionError):
        sim.run()
    return sim


class TestBundleFromRealFailure:
    def test_dump_written_and_valid(self, tmp_path):
        sim = _crashed_sim(tmp_path)
        assert sim.crash_bundle_path is not None
        with open(sim.crash_bundle_path) as fh:
            doc = json.load(fh)
        validate_crash_bundle(doc)          # raises on any malformation
        assert doc["schema"] == CRASH_BUNDLE_SCHEMA
        assert doc["reason"] == "TaskExecutionError"
        assert doc["error"]["type"] == "TaskExecutionError"
        assert doc["run"] == "counter"
        assert doc["injections"].get("task_exception", 0) > 0
        assert doc["n_events_seen"] >= len(doc["events"]) > 0
        assert len(doc["tiles"]) == sim.config.n_tiles

    def test_build_without_dump_dir_is_pure(self):
        plan = FaultPlan(seed=1, task_exception_rate=1.0)
        sim = build_counter_sim(4, 4, sim_kwargs=dict(faults=plan))
        with pytest.raises(TaskExecutionError) as exc_info:
            sim.run()
        assert sim.crash_bundle_path is None   # no dir configured: no file
        doc = build_crash_bundle(sim, "manual", exc_info.value)
        json.dumps(doc)                        # JSON-safe even with no ring
        assert doc["events"] == []
        assert doc["error"]["type"] == "TaskExecutionError"

    def test_deterministic_filename_overwrites(self, tmp_path):
        plan = FaultPlan(seed=1, task_exception_rate=1.0)
        sim = build_counter_sim(4, 4, sim_kwargs=dict(faults=plan))
        with pytest.raises(TaskExecutionError):
            sim.run()
        first = write_crash_bundle(sim, str(tmp_path), "manual")
        second = write_crash_bundle(sim, str(tmp_path), "manual")
        assert first == second
        assert len(list(tmp_path.iterdir())) == 1


class TestValidation:
    def _valid_doc(self, tmp_path):
        sim = _crashed_sim(tmp_path)
        with open(sim.crash_bundle_path) as fh:
            return json.load(fh)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_crash_bundle([1, 2])

    def test_rejects_wrong_schema(self, tmp_path):
        doc = self._valid_doc(tmp_path)
        doc["schema"] = "repro.crash/999"
        with pytest.raises(ValueError, match="bad schema"):
            validate_crash_bundle(doc)

    def test_rejects_missing_top_level_key(self, tmp_path):
        doc = self._valid_doc(tmp_path)
        del doc["gvt"]
        with pytest.raises(ValueError, match="missing bundle keys"):
            validate_crash_bundle(doc)

    def test_rejects_malformed_live_task(self, tmp_path):
        doc = self._valid_doc(tmp_path)
        doc["live_tasks"] = [{"tid": 1}]
        with pytest.raises(ValueError, match="live_tasks"):
            validate_crash_bundle(doc)

    def test_rejects_malformed_event(self, tmp_path):
        doc = self._valid_doc(tmp_path)
        doc["events"] = [{"kind": "no_such_event_kind"}]
        with pytest.raises(ValueError, match="events\\[0\\]"):
            validate_crash_bundle(doc)


class TestValidatorCli:
    def test_valid_bundle_returns_zero(self, tmp_path, capsys):
        sim = _crashed_sim(tmp_path)
        assert main([sim.crash_bundle_path]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_bundle_returns_one(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope"}))
        assert main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_no_arguments_returns_two(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_truncated_json_returns_four_without_traceback(
            self, tmp_path, capsys):
        sim = _crashed_sim(tmp_path)
        with open(sim.crash_bundle_path) as fh:
            whole = fh.read()
        path = tmp_path / "torn.json"
        path.write_text(whole[:len(whole) // 2])   # crash mid-write
        assert main([str(path)]) == 4
        err = capsys.readouterr().err
        assert "INVALID JSON (truncated or garbage)" in err
        assert "line" in err and "column" in err
        assert "Traceback" not in err

    def test_garbage_bytes_return_four(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_bytes(b"\x00\xff not json")
        assert main([str(path)]) == 4
        assert "INVALID JSON" in capsys.readouterr().err

    def test_missing_file_returns_four(self, tmp_path, capsys):
        assert main([str(tmp_path / "never-written.json")]) == 4
        assert "UNREADABLE" in capsys.readouterr().err

    def test_wrong_field_type_names_the_field(self, tmp_path, capsys):
        sim = _crashed_sim(tmp_path)
        with open(sim.crash_bundle_path) as fh:
            doc = json.load(fh)
        doc["live_tasks"] = "not-a-list"
        path = tmp_path / "typed.json"
        path.write_text(json.dumps(doc))
        assert main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "'live_tasks' must be a list" in err
        assert "got str" in err

    def test_worst_exit_code_wins_across_files(self, tmp_path, capsys):
        sim = _crashed_sim(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        torn = tmp_path / "torn.json"
        torn.write_text("{")
        # every file is reported, not just the first failure
        assert main([sim.crash_bundle_path, str(bad), str(torn)]) == 4
        captured = capsys.readouterr()
        assert "ok" in captured.out
        assert "INVALID —" in captured.err
        assert "INVALID JSON" in captured.err


class TestCrashValidateSubcommand:
    def test_repro_crash_validate_exits_four_on_torn_json(
            self, tmp_path, capsys):
        from repro.cli import main as cli_main
        path = tmp_path / "torn.json"
        path.write_text('{"schema": "repro.crash/1", "run"')
        assert cli_main(["crash-validate", str(path)]) == 4
        err = capsys.readouterr().err
        assert "INVALID JSON (truncated or garbage)" in err
        assert "Traceback" not in err

    def test_repro_crash_validate_ok_bundle(self, tmp_path, capsys):
        sim = _crashed_sim(tmp_path)
        from repro.cli import main as cli_main
        assert cli_main(["crash-validate", sim.crash_bundle_path]) == 0
        assert "ok" in capsys.readouterr().out
