"""The Farm: a deterministic parallel scheduler for simulation jobs.

``Farm.run(specs)`` executes a list of :class:`~repro.farm.job.JobSpec`
on a ``multiprocessing`` worker pool and returns one
:class:`~repro.farm.job.JobResult` per spec **in input order**, no matter
which worker finished first — so any table rendered from the results is
byte-identical to a serial run. On top of the pool it layers:

- a :class:`~repro.farm.cache.ResultCache` pass that satisfies jobs whose
  content address already has a fresh entry without executing anything;
- worker warm-up (the heavy ``repro`` imports are paid once per worker,
  not on each worker's first job);
- bounded in-flight backpressure (at most ``jobs * backlog_factor``
  submitted but unfinished jobs, so huge sweeps don't pickle every input
  up front);
- per-job timeouts via the :mod:`repro.faults` graceful watchdog (the
  job returns partial stats instead of being killed) and parent-side
  retries for crashed/raising jobs using the same exponential
  :func:`repro.faults.backoff_delay` curve, read in milliseconds;
- telemetry: worker metric registries are merged into one parent
  :class:`~repro.telemetry.MetricsRegistry`, farm-level events
  (``job_start``/``job_done``/``cache_hit``/``worker_crash``) are
  published on the parent's :class:`~repro.telemetry.EventBus`, and an
  optional single-line live progress display tracks the sweep.
"""

from __future__ import annotations

import dataclasses
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import List, Optional, Sequence, Tuple

from ..errors import FarmError
from ..faults.resilience import ResiliencePolicy, backoff_delay
from ..telemetry import (CacheHitEvent, EventBus, JobDoneEvent,
                         JobStartEvent, MetricsRegistry, WorkerCrashEvent)
from .cache import ResultCache
from .job import JobResult, JobSpec, execute_job
from .shard import shard_index

#: retry curve reused from repro.faults; cycles read as milliseconds here
_DEFAULT_RETRY = ResiliencePolicy(backoff_base=200, backoff_factor=2.0,
                                  backoff_cap=5_000)


def _warmup_worker() -> None:
    # Pay the heavy imports once per worker, not on its first job.
    import repro.bench.harness  # noqa: F401  (pulls simulator + telemetry)
    import repro.apps  # noqa: F401


def apply_timeout(spec: JobSpec, timeout_s: float) -> JobSpec:
    """Attach the graceful wall-clock watchdog for ``timeout_s``.

    Must be applied *before* digests are computed: a timed job is a
    different content address than an untimed one, because the watchdog
    can change its result (partial stats). ``timeout_s <= 0`` returns the
    spec unchanged. Shared by :class:`Farm` and the serve admission path
    so both sides agree on the content address of a timed job.
    """
    if timeout_s <= 0:
        return spec
    base = spec.resilience
    if base is None:
        # watchdog only — every other resilience mechanism stays off
        # so stats match a policy-free run that doesn't hit the limit
        base = ResiliencePolicy(max_attempts=0, backoff_base=0,
                                livelock_window=0)
    if base.max_wall_seconds and base.max_wall_seconds <= timeout_s:
        policy = base
    else:
        policy = dataclasses.replace(base, max_wall_seconds=timeout_s)
    return dataclasses.replace(spec, resilience=policy)


class Farm:
    """Parallel executor for :class:`JobSpec` lists (see module docs).

    ``jobs <= 1`` executes inline in the parent process (identical code
    path minus the pool), which is both the determinism baseline and the
    debuggable mode; ``use_pool=True`` forces worker processes even at
    ``jobs=1`` (the serve worker slots do this so simulations never run
    on a server thread). ``persistent=True`` keeps the process pool alive
    across ``run()`` calls — pair it with :meth:`close` (or use the farm
    as a context manager). ``registry``/``bus`` default to fresh private
    instances; pass shared ones to aggregate across farms.
    """

    def __init__(self, jobs: int = 1, *,
                 cache: Optional[ResultCache] = None,
                 bus: Optional[EventBus] = None,
                 registry: Optional[MetricsRegistry] = None,
                 max_attempts: int = 2,
                 timeout_s: float = 0.0,
                 backlog_factor: int = 4,
                 progress: bool = False,
                 trace_dir: Optional[str] = None,
                 collect_metrics: bool = True,
                 retry_policy: Optional[ResiliencePolicy] = None,
                 warmup: bool = True,
                 use_pool: Optional[bool] = None,
                 persistent: bool = False,
                 crash_dump_dir: Optional[str] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.jobs = jobs
        self.use_pool = jobs > 1 if use_pool is None else bool(use_pool)
        self.persistent = persistent
        self._executor: Optional[ProcessPoolExecutor] = None
        self.cache = cache
        self.bus = bus if bus is not None else EventBus()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_attempts = max_attempts
        self.timeout_s = timeout_s
        self.backlog_factor = max(1, backlog_factor)
        self.progress = progress
        self.trace_dir = str(trace_dir) if trace_dir else None
        self.collect_metrics = collect_metrics
        self.retry_policy = retry_policy or _DEFAULT_RETRY
        self.warmup = warmup
        self.crash_dump_dir = str(crash_dump_dir) if crash_dump_dir \
            else None
        #: set by request_stop()/SIGTERM: drain in-flight, fail unstarted
        self._stop_requested = threading.Event()
        self.n_drained = 0
        self.n_drain_failed = 0
        # lifetime counters (across run() calls) for summary()
        self.n_jobs = 0
        self.n_done = 0
        self.n_failed = 0
        self.n_cache_hits = 0
        self.n_retries = 0
        self.n_worker_crashes = 0
        self.wall_s = 0.0
        self._t0 = time.monotonic()
        self._progress_tty = hasattr(sys.stderr, "isatty") \
            and sys.stderr.isatty()
        #: seconds between plain-text progress lines on non-TTY stderr
        self.progress_interval_s = 5.0
        self._progress_last = 0.0

    # ------------------------------------------------------------------
    def _now_ms(self) -> int:
        return int((time.monotonic() - self._t0) * 1000)

    def _emit(self, event) -> None:
        if self.bus:
            self.bus.emit(event)

    def _with_timeout(self, spec: JobSpec) -> JobSpec:
        """See :func:`apply_timeout` (kept as a method for callers/tests)."""
        return apply_timeout(spec, self.timeout_s)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec],
            shard: Optional[Tuple[int, int]] = None) -> List[JobResult]:
        """Execute every spec; results come back in input order.

        ``shard=(k, n)`` (1-based ``k``) keeps only the jobs whose digest
        falls in that deterministic shard — the distributed-sweep entry
        point. Failed jobs (retries exhausted) come back with ``error``
        set; they never raise here so one bad job cannot sink a sweep.
        """
        t_run = time.monotonic()
        self._stop_requested.clear()
        specs = [self._with_timeout(s) for s in specs]
        if shard is not None:
            k, n = shard
            specs = [s for s in specs
                     if shard_index(s.digest(), n) == k - 1]
        self.n_jobs += len(specs)
        results: List[Optional[JobResult]] = [None] * len(specs)

        pending: List[int] = []
        for i, spec in enumerate(specs):
            hit = self.cache.get(spec.digest()) if self.cache else None
            if hit is not None:
                cfg_cores = spec.resolved_config().n_cores
                results[i] = JobResult(
                    digest=spec.digest(), app=spec.app, variant=spec.variant,
                    n_cores=cfg_cores, label=spec.display, stats=hit,
                    cached=True)
                self.n_cache_hits += 1
                self.n_done += 1
                self.registry.inc("farm_jobs", status="cached")
                self._emit(CacheHitEvent(t=self._now_ms(),
                                         digest=spec.digest(), app=spec.app,
                                         variant=spec.variant,
                                         n_cores=cfg_cores))
            else:
                pending.append(i)

        self._progress(len(specs), running=0)
        if pending:
            if self.use_pool:
                self._run_pool(specs, pending, results)
            else:
                self._run_inline(specs, pending, results)
        self.wall_s += time.monotonic() - t_run
        self._progress(len(specs), running=0, final=True)
        return [r for r in results if r is not None]  # all are set

    # ------------------------------------------------------------------
    def _finalize(self, spec: JobSpec, res: JobResult,
                  results: List[Optional[JobResult]], idx: int) -> None:
        results[idx] = res
        self.n_done += 1
        if res.error is not None:
            self.n_failed += 1
            self.registry.inc("farm_jobs", status="failed")
        else:
            self.registry.inc("farm_jobs", status="done")
            if res.metrics is not None:
                self.registry.merge_snapshot(res.metrics)
            # never cache partial (watchdog-stopped) results
            if (self.cache is not None and res.stats is not None
                    and res.stats.completed and not res.cached):
                self.cache.put(spec, res.stats, wall_s=res.wall_s)
        self._emit(JobDoneEvent(t=self._now_ms(), digest=res.digest,
                                ok=res.error is None, cached=res.cached,
                                wall_ms=int(res.wall_s * 1000),
                                error=res.error or ""))

    def _retry_delay_s(self, attempt: int) -> float:
        return backoff_delay(self.retry_policy, attempt) / 1000.0

    # -- graceful drain ------------------------------------------------
    def request_stop(self) -> None:
        """Ask a running sweep to drain: in-flight jobs finish (and their
        cache entries persist), unstarted jobs fail fast with a
        ``farm stopped`` error instead of executing. Thread/signal-safe;
        idempotent; a later ``run()`` call starts fresh."""
        self._stop_requested.set()

    @property
    def stopping(self) -> bool:
        return self._stop_requested.is_set()

    def _drain_queue(self, specs, queue, results) -> None:
        # fail everything not yet submitted; in-flight futures keep
        # running and are finalized (cached) by the normal path
        while queue:
            idx, attempt, _ = queue.popleft()
            spec = specs[idx]
            self.n_drain_failed += 1
            self.registry.inc("farm_drain_failed")
            self._finalize(spec, JobResult(
                digest=spec.digest(), app=spec.app, variant=spec.variant,
                n_cores=spec.resolved_config().n_cores,
                label=spec.display, attempts=attempt,
                error="farm stopped: job drained before execution"),
                results, idx)

    def _dump_worker_crash(self, spec, attempt: int, detail: str) -> None:
        if self.crash_dump_dir is None:
            return
        try:
            from ..faults.crashdump import write_farm_crash_bundle
            write_farm_crash_bundle(
                spec, self.crash_dump_dir, "farm_worker_crash",
                attempt=attempt, detail=detail)
        except Exception:           # diagnostics must never sink a sweep
            pass

    def _run_inline(self, specs, pending, results) -> None:
        for i, idx in enumerate(pending):
            if self._stop_requested.is_set():
                self._drain_queue(
                    specs, deque((j, 1, 0.0) for j in pending[i:]),
                    results)
                return
            spec = specs[idx]
            attempt = 1
            while True:
                self._emit(JobStartEvent(t=self._now_ms(),
                                         digest=spec.digest(), app=spec.app,
                                         variant=spec.variant,
                                         n_cores=spec.resolved_config().n_cores,
                                         attempt=attempt))
                res = execute_job(spec, self.trace_dir, self.collect_metrics)
                res.attempts = attempt
                if res.error is None or attempt >= self.max_attempts:
                    break
                self.n_retries += 1
                self.registry.inc("farm_retries")
                time.sleep(self._retry_delay_s(attempt))
                attempt += 1
            self._finalize(spec, res, results, idx)
            self._progress(len(specs), running=0)

    def _run_pool(self, specs, pending, results) -> None:
        max_inflight = self.jobs * self.backlog_factor
        queue = deque((idx, 1, 0.0) for idx in pending)
        inflight = {}
        executor = self._ensure_executor()
        try:
            while queue or inflight:
                if self._stop_requested.is_set() and queue:
                    self._drain_queue(specs, queue, results)
                    if not inflight:
                        break
                now = time.monotonic()
                while queue and len(inflight) < max_inflight:
                    idx, attempt, ready_at = queue[0]
                    if ready_at > now:
                        break
                    queue.popleft()
                    spec = specs[idx]
                    fut = executor.submit(execute_job, spec, self.trace_dir,
                                          self.collect_metrics)
                    inflight[fut] = (idx, attempt)
                    self._emit(JobStartEvent(
                        t=self._now_ms(), digest=spec.digest(), app=spec.app,
                        variant=spec.variant,
                        n_cores=spec.resolved_config().n_cores,
                        attempt=attempt))
                self._progress(len(specs), running=len(inflight))
                if not inflight:
                    time.sleep(min(0.05, max(0.0, queue[0][2] - now)))
                    continue
                done, _ = wait(list(inflight), timeout=0.2,
                               return_when=FIRST_COMPLETED)
                crashed = False
                for fut in done:
                    idx, attempt = inflight.pop(fut)
                    exc = fut.exception()
                    if exc is not None:
                        # worker died (or spec failed to pickle): the pool
                        # is broken; every in-flight job went down with it
                        crashed = True
                        self.n_worker_crashes += 1
                        self.registry.inc("farm_worker_crashes")
                        self._emit(WorkerCrashEvent(
                            t=self._now_ms(), n_inflight=len(inflight) + 1,
                            detail=f"{type(exc).__name__}: {exc}"))
                        self._dump_worker_crash(
                            specs[idx], attempt,
                            f"{type(exc).__name__}: {exc}")
                        self._requeue_or_fail(specs, idx, attempt,
                                              f"worker crash: {exc}",
                                              queue, results)
                        continue
                    res = fut.result()
                    res.attempts = attempt
                    if res.error is not None and attempt < self.max_attempts:
                        self.n_retries += 1
                        self.registry.inc("farm_retries")
                        queue.append((idx, attempt + 1,
                                      time.monotonic()
                                      + self._retry_delay_s(attempt)))
                    else:
                        if self._stop_requested.is_set() \
                                and res.error is None:
                            self.n_drained += 1
                        self._finalize(specs[idx], res, results, idx)
                if crashed:
                    # drain the victims — salvage any future that finished
                    # cleanly before the pool broke, requeue the rest
                    for fut, (idx, attempt) in list(inflight.items()):
                        if fut.done() and fut.exception() is None:
                            res = fut.result()
                            res.attempts = attempt
                            if (res.error is not None
                                    and attempt < self.max_attempts):
                                self.n_retries += 1
                                self.registry.inc("farm_retries")
                                queue.append((idx, attempt + 1,
                                              time.monotonic()
                                              + self._retry_delay_s(attempt)))
                            else:
                                self._finalize(specs[idx], res, results, idx)
                        else:
                            self._requeue_or_fail(specs, idx, attempt,
                                                  "worker pool broke",
                                                  queue, results)
                    inflight.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = self._executor = self._make_executor()
                self._progress(len(specs), running=len(inflight))
        finally:
            if self._stop_requested.is_set():
                # drain shutdown: wait for the workers so the pool is
                # never orphaned mid-write, persistent or not
                executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
            elif self.persistent:
                self._executor = executor
            else:
                executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None

    def _requeue_or_fail(self, specs, idx, attempt, detail, queue,
                         results) -> None:
        if attempt < self.max_attempts:
            self.n_retries += 1
            self.registry.inc("farm_retries")
            queue.append((idx, attempt + 1,
                          time.monotonic() + self._retry_delay_s(attempt)))
        else:
            spec = specs[idx]
            res = JobResult(digest=spec.digest(), app=spec.app,
                            variant=spec.variant,
                            n_cores=spec.resolved_config().n_cores,
                            label=spec.display, error=detail,
                            attempts=attempt)
            self._finalize(spec, res, results, idx)

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_warmup_worker if self.warmup else None)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        """The live process pool, creating (or re-creating) it on demand."""
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def close(self) -> None:
        """Shut the persistent process pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "Farm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _progress(self, total: int, *, running: int,
                  final: bool = False) -> None:
        if not self.progress:
            return
        line = (f"[farm] {self.n_done}/{total} jobs  "
                f"({self.n_cache_hits} cached, {running} running, "
                f"{self.n_failed} failed)")
        if self._progress_tty:
            # interactive: one carriage-return-updated status line
            print(f"\r{line}", end="\n" if final else "", file=sys.stderr,
                  flush=True)
            return
        # non-TTY (CI logs, server stderr): periodic plain lines instead
        # of carriage-return spam — at most one per progress_interval_s,
        # plus the final summary line
        now = time.monotonic()
        if not final and now - self._progress_last < self.progress_interval_s:
            return
        self._progress_last = now
        print(line, file=sys.stderr, flush=True)

    def summary(self) -> dict:
        """Lifetime totals (JSON-safe), for BENCH summaries and logs."""
        cache = self.cache.stats() if self.cache else None
        return {"workers": self.jobs, "jobs": self.n_jobs,
                "done": self.n_done, "failed": self.n_failed,
                "cache_hits": self.n_cache_hits, "retries": self.n_retries,
                "worker_crashes": self.n_worker_crashes,
                "drained": self.n_drained,
                "drain_failed": self.n_drain_failed,
                "wall_s": round(self.wall_s, 3), "cache": cache}

    def raise_on_failures(self, results: Sequence[JobResult]) -> None:
        """Raise :class:`~repro.errors.FarmError` if any result failed."""
        failures = [(r.label, r.error) for r in results
                    if r.error is not None]
        if failures:
            label, err = failures[0]
            raise FarmError(
                f"{len(failures)} of {len(results)} farm jobs failed "
                f"(first: {label}: {err})", failures=failures)


def install_sigterm_drain(farm: Farm) -> None:
    """Make SIGTERM (and SIGINT) drain ``farm`` instead of killing it.

    In-flight jobs finish and persist their cache entries; unstarted jobs
    fail fast; the process pool shuts down waited-for, never orphaned.
    Must run on the main thread (signal-handler rule); chains any
    previously installed handler.
    """
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous = signal.getsignal(sig)

        def _drain(signum, frame, _prev=previous):
            farm.request_stop()
            if callable(_prev) and _prev not in (signal.SIG_IGN,
                                                 signal.SIG_DFL):
                _prev(signum, frame)

        signal.signal(sig, _drain)
