"""Generic application runners.

``run_app`` drives any module following the :mod:`repro.apps` convention on
a speculative simulator; ``run_serial`` runs the same program on the serial
reference executor; ``sweep_cores`` produces the paper's scaling curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..config import SystemConfig
from ..core.serial import SerialExecutor
from ..core.simulator import Simulator
from ..core.stats import RunStats
from ..telemetry import EventBus
from ..vt import Ordering


@dataclass
class AppRun:
    """Outcome of one application run.

    ``cached`` marks a run rebuilt from the :mod:`repro.farm` result
    cache (or executed in a farm worker): its stats are byte-identical
    to a live run's, but there is no in-process simulator behind it, so
    :attr:`sim` / :attr:`metrics` / ``handles`` are unavailable.
    """

    app: str
    variant: str
    n_cores: int
    stats: RunStats
    handles: Dict
    cached: bool = False

    @property
    def makespan(self) -> int:
        return self.stats.makespan

    @property
    def sim(self) -> Simulator:
        """The simulator that produced this run (metrics live on it)."""
        try:
            return self.handles["_sim"]
        except KeyError:
            raise AttributeError(
                "this AppRun has no live simulator (cache/farm result); "
                "re-run with the cache bypassed to inspect sim state")

    @property
    def metrics(self):
        """The run's :class:`repro.telemetry.MetricsRegistry`."""
        return self.sim.metrics


def _root_ordering(app, variant: str) -> Ordering:
    fn = getattr(app, "root_ordering", None)
    return fn(variant) if fn is not None else Ordering.UNORDERED


def run_app(app, inp, variant: str = "fractal", n_cores: int = 4, *,
            config: Optional[SystemConfig] = None, check: bool = True,
            audit: bool = False, enable_trace: bool = False,
            max_cycles: Optional[int] = None,
            telemetry: Optional[EventBus] = None,
            faults=None, resilience=None,
            crash_dump_dir: Optional[str] = None,
            **build_options) -> AppRun:
    """Build and run ``app`` (a module from :mod:`repro.apps`).

    ``telemetry`` is an :class:`~repro.telemetry.EventBus` with the
    caller's subscribers (recorders, exporters) already attached; the
    simulator publishes its event stream to it. ``faults`` /
    ``resilience`` / ``crash_dump_dir`` pass through to the simulator
    (see :mod:`repro.faults`); a run stopped by the graceful watchdog
    returns partial stats, so audit and result checks are skipped for it.
    """
    cfg = config or SystemConfig.with_cores(n_cores)
    sim = Simulator(cfg, root_ordering=_root_ordering(app, variant),
                    name=f"{app.__name__.rsplit('.', 1)[-1]}-{variant}",
                    enable_trace=enable_trace, enable_audit=audit,
                    bus=telemetry, faults=faults, resilience=resilience,
                    crash_dump_dir=crash_dump_dir)
    handles = app.build(sim, inp, variant=variant, **build_options)
    stats = sim.run(max_cycles=max_cycles)
    if audit and stats.completed:
        sim.audit()
    if check and stats.completed:
        app.check(handles, inp)
    run = AppRun(app=app.__name__, variant=variant, n_cores=cfg.n_cores,
                 stats=stats, handles=handles)
    run.handles["_sim"] = sim
    return run


def run_serial(app, inp, variant: str = "fractal", *, check: bool = True,
               **build_options) -> SerialExecutor:
    """Run the same program on the non-speculative serial executor."""
    host = SerialExecutor(root_ordering=_root_ordering(app, variant),
                          name=f"{app.__name__}-serial")
    handles = app.build(host, inp, variant=variant, **build_options)
    host.run()
    if check:
        app.check(handles, inp)
    host.handles = handles
    return host


def sweep_cores(app, inp, variants: Iterable[str], core_counts: Iterable[int],
                *, config_for=None, check: bool = True,
                telemetry: Optional[EventBus] = None,
                jobs: int = 1, cache=None, farm=None,
                **build_options) -> List[AppRun]:
    """Run every (variant, core count) pair; returns all runs.

    ``config_for(n_cores, variant)`` may supply custom configs (e.g. the
    precise-conflict runs of Fig. 14a). A ``telemetry`` bus is shared by
    every run in the sweep; subscribers see the concatenated streams.

    With ``jobs > 1``, a ``cache`` (:class:`repro.farm.ResultCache`), or
    a prebuilt ``farm`` (:class:`repro.farm.Farm`), the sweep is executed
    as a deterministic parallel job graph instead: results come back in
    the same order with identical stats, but the returned runs carry no
    live simulator/handles (``AppRun.cached`` semantics), and the
    ``telemetry`` bus sees farm-level events rather than per-cycle
    simulator events (those stay in the workers). Job failures raise
    :class:`repro.errors.FarmError` after the whole sweep has been
    attempted.
    """
    if jobs <= 1 and cache is None and farm is None:
        runs = []
        for variant in variants:
            for n in core_counts:
                cfg = config_for(n, variant) if config_for else None
                runs.append(run_app(app, inp, variant=variant, n_cores=n,
                                    config=cfg, check=check,
                                    telemetry=telemetry, **build_options))
        return runs

    from ..farm import Farm, JobSpec
    specs = [JobSpec(app=app.__name__, variant=variant, n_cores=n,
                     config=(config_for(n, variant) if config_for else None),
                     input_obj=inp, check=check,
                     build_options=dict(build_options))
             for variant in variants for n in core_counts]
    if farm is None:
        farm = Farm(jobs=jobs, cache=cache, bus=telemetry)
    results = farm.run(specs)
    farm.raise_on_failures(results)
    return [AppRun(app=spec.app, variant=spec.variant, n_cores=res.n_cores,
                   stats=res.stats, handles={}, cached=True)
            for spec, res in zip(specs, results)]
