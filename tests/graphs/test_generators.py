"""Tests for graph containers and generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AppError
from repro.graphs import Graph, grid3d, random_graph, rmat, rmf_wide


class TestGraph:
    def test_undirected_symmetry(self):
        g = Graph(4)
        g.add_edge(0, 1)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.m == 2

    def test_directed(self):
        g = Graph(4, directed=True)
        g.add_edge(0, 1)
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_weights(self):
        g = Graph(3)
        g.add_edge(0, 1, weight=2.5)
        assert g.weight(0, 1) == 2.5 == g.weight(1, 0)
        assert g.weight(0, 2, default=9) == 9

    def test_edges_logical_once(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert sorted(g.edges()) == [(0, 1), (1, 2)]

    def test_dedup(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.adj[0].append(1)
        g.adj[0].append(0)
        g.dedup()
        assert g.adj[0] == [1]

    def test_out_of_range_rejected(self):
        g = Graph(2)
        with pytest.raises(AppError):
            g.add_edge(0, 2)

    def test_to_networkx(self):
        g = Graph(3)
        g.add_edge(0, 1, weight=4.0)
        gx = g.to_networkx()
        assert gx[0][1]["weight"] == 4.0


class TestRmat:
    def test_deterministic(self):
        a, b = rmat(5, 4, seed=3), rmat(5, 4, seed=3)
        assert a.adj == b.adj

    def test_seed_matters(self):
        assert rmat(5, 4, seed=3).adj != rmat(5, 4, seed=4).adj

    def test_no_self_loops_or_dups(self):
        g = rmat(6, 6, seed=1)
        for u in range(g.n):
            assert u not in g.adj[u]
            assert len(set(g.adj[u])) == len(g.adj[u])

    def test_power_law_skew(self):
        """R-MAT must concentrate degree: the top decile of nodes holds a
        disproportionate share of edges."""
        g = rmat(9, 8, seed=1)
        degrees = sorted((g.degree(v) for v in range(g.n)), reverse=True)
        top = sum(degrees[:g.n // 10])
        assert top > 0.3 * sum(degrees)

    def test_weighted(self):
        g = rmat(4, 4, seed=1, weighted=True)
        for u, v in g.edges():
            assert 0.0 < g.weight(u, v) < 1.0

    def test_scale_bounds(self):
        with pytest.raises(AppError):
            rmat(0)
        with pytest.raises(AppError):
            rmat(25)


class TestRmf:
    def test_structure(self):
        g, s, t = rmf_wide(3, 4, seed=1)
        assert g.n == 9 * 4
        assert s == 0 and t == g.n - 1
        assert g.directed

    def test_interframe_edges_small_caps(self):
        g, s, t = rmf_wide(3, 3, seed=1, cap_range=(1, 10))
        inter = [(u, v) for u, v in g.edges() if v // 9 == u // 9 + 1]
        assert len(inter) == 9 * 2
        assert all(1 <= g.weight(u, v) <= 10 for u, v in inter)

    def test_intra_frame_caps_large(self):
        g, _, _ = rmf_wide(3, 2, seed=1, cap_range=(1, 10))
        intra = [(u, v) for u, v in g.edges() if v // 9 == u // 9]
        assert all(g.weight(u, v) == 10 * 9 for u, v in intra)

    def test_flow_is_bounded_by_frame_cut(self):
        """Max flow must not exceed the capacity of any inter-frame cut."""
        import networkx as nx

        g, s, t = rmf_wide(3, 3, seed=2)
        cut = sum(g.weight(u, v) for u, v in g.edges()
                  if u < 9 and 9 <= v < 18)
        value, _ = nx.maximum_flow(g.to_networkx(), s, t)
        assert 0 < value <= cut

    def test_validation(self):
        with pytest.raises(AppError):
            rmf_wide(1, 3)
        with pytest.raises(AppError):
            rmf_wide(3, 3, cap_range=(5, 1))


class TestGrid3d:
    def test_dimensions(self):
        g = grid3d(3, 4, 2)
        assert g.n == 24

    def test_degrees(self):
        g = grid3d(3, 3, 3)
        center = (1 * 3 + 1) * 3 + 1
        assert g.degree(center) == 6
        assert g.degree(0) == 3

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_edge_count(self, x, y, z):
        g = grid3d(x, y, z)
        want = ((x - 1) * y * z + x * (y - 1) * z + x * y * (z - 1))
        assert g.m == 2 * want


class TestRandomGraph:
    def test_edge_count(self):
        g = random_graph(32, 50, seed=1)
        assert g.m == 100

    def test_no_self_loops(self):
        g = random_graph(16, 40, seed=2)
        assert all(u not in g.adj[u] for u in range(g.n))
