"""Fig. 15a: flat vs swarm-fg vs fractal on mis, color, and msf.

Paper at 256 cores: fractal best (mis 145x, color 126x, msf 40x);
swarm-fg follows the same trend but is 6-93% slower from its fixed order;
flat lowest (mis 98x, color 74x, msf 9.3x). Expected shape: at the top
core count, fractal <= swarm-fg <= flat in makespan per app (loosely for
color/mis whose gaps are small).
"""

from _common import core_counts, emit, once, run_once
from repro.apps import color, mis, msf
from repro.bench.report import format_table

APPS = [
    ("mis", mis, dict(scale=7, edge_factor=5)),
    ("color", color, dict(scale=6, edge_factor=4)),
    ("msf", msf, dict(scale=6, edge_factor=3)),
]
VARIANTS = ("flat", "swarm", "fractal")


def sweep(cores, apps=APPS, tag=""):
    results = {}
    rows = []
    for name, app, params in apps:
        inp = app.make_input(**params)
        base = None
        for v in VARIANTS:
            for n in cores:
                run = run_once(app, inp, v, n)
                results[(name, v, n)] = run
                if base is None:
                    base = run.makespan
        for n in cores:
            rows.append([name, f"{n}c"]
                        + [f"{base / results[(name, v, n)].makespan:.2f}x"
                           for v in VARIANTS])
    emit(f"fig15a_overserialization{tag}",
         format_table(["app", "cores"] + list(VARIANTS), rows))
    return results


def bench_fig15a_mis(benchmark):
    cores = core_counts(quick=True)
    results = once(benchmark, lambda: sweep(cores, apps=APPS[:1], tag="_mis"))
    top = max(cores)
    assert results[("mis", "fractal", top)].stats.tasks_committed > 0


def bench_fig15a_color(benchmark):
    cores = core_counts(quick=True)
    once(benchmark, lambda: sweep(cores, apps=APPS[1:2], tag="_color"))


def bench_fig15a_msf(benchmark):
    cores = core_counts(quick=True)
    results = once(benchmark, lambda: sweep(cores, apps=APPS[2:], tag="_msf"))
    top = max(cores)
    # swarm-fg's static conflict-resolution priority causes more aborted
    # work than fractal's dynamic tiebreakers (paper Sec. 6.2)
    assert (results[("msf", "fractal", top)].makespan
            <= results[("msf", "swarm", top)].makespan * 1.5)


if __name__ == "__main__":
    sweep(core_counts())
