"""A non-speculative serial reference executor.

Runs the *same* Fractal program (same task functions, same typed data
structures) without speculation: one task at a time, always the lowest
pending task in a serial order that satisfies every Fractal constraint
(domain atomicity trivially holds; ordered domains run in timestamp order;
parents run before children).

Uses:

- **Differential oracle** — for programs whose results are order-
  deterministic, a Simulator run must produce identical final memory.
- **Serial baseline** — its cycle count stands in for the paper's "tuned
  serial versions" (Table 4): per-access latencies from a single-core
  cache model, no task-management overheads.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..config import LatencyModel
from ..errors import DomainError, SimulationError
from ..mem.address import AddressSpace
from ..vt import Ordering
from .domain import Domain
from .hostbase import AllocAPI
from .task import TaskDesc


class _SerialMemory:
    """Flat, non-speculative memory with the SpecMemory peek/poke surface."""

    def __init__(self, default: Any = 0):
        self._values: Dict[int, Any] = {}
        self.default = default

    def peek(self, addr: int) -> Any:
        """Read a word (non-speculative semantics)."""
        return self._values.get(addr, self.default)

    def poke(self, addr: int, value: Any) -> None:
        """Write a word (non-speculative semantics)."""
        self._values[addr] = value

    def poke_fresh(self, addr: int, value: Any) -> None:
        """Initialize a fresh word (no speculation to guard serially)."""
        self._values[addr] = value


class SerialContext:
    """The ctx object passed to task functions under serial execution."""

    __slots__ = ("host", "task", "cycles")

    def __init__(self, host: "SerialExecutor", task: TaskDesc):
        self.host = host
        self.task = task
        self.cycles = 0

    # --- program-visible state ----------------------------------------
    @property
    def timestamp(self) -> Optional[int]:
        return self.task.timestamp

    @property
    def hint(self) -> Optional[int]:
        return self.task.hint

    # --- memory ----------------------------------------------------------
    def load(self, addr: int) -> Any:
        self.cycles += self.host._access_cost(addr)
        return self.host.memory._values.get(addr, self.host.memory.default)

    def store(self, addr: int, value: Any) -> None:
        self.cycles += self.host._access_cost(addr)
        self.host.memory._values[addr] = value

    def compute(self, cycles: int) -> None:
        self.cycles += cycles

    def emit(self, event) -> None:
        """Deferred-event surface parity with TaskContext: serial tasks
        commit as they run, so the event is recorded immediately (on
        ``host.emitted``; there is no bus or metrics registry here)."""
        self.host.emitted.append(event)

    # --- enqueues -------------------------------------------------------
    def enqueue(self, fn: Callable, *args, ts: Optional[int] = None,
                hint: Optional[int] = None,
                label: Optional[str] = None) -> TaskDesc:
        domain = self.task.domain
        timestamp = domain.validate_child_timestamp(self.task.timestamp, ts)
        return self.host._spawn(self.task, fn, args, domain, timestamp,
                                hint, label, kind="same")

    def create_subdomain(self, ordering: Ordering = Ordering.UNORDERED,
                         flattenable: bool = False) -> Domain:
        # ``flattenable`` is a performance hint; serially it changes nothing
        if self.task.subdomain is not None:
            raise DomainError(
                f"{self.task} already created a subdomain; a task may call "
                f"create_subdomain exactly once")
        sub = Domain(ordering, creator=self.task, parent=self.task.domain)
        self.task.subdomain = sub
        return sub

    def enqueue_sub(self, fn: Callable, *args, ts: Optional[int] = None,
                    hint: Optional[int] = None,
                    label: Optional[str] = None) -> TaskDesc:
        sub = self.task.subdomain
        if sub is None:
            raise DomainError("enqueue_sub before create_subdomain")
        timestamp = sub.ordering.validate_timestamp(ts)
        return self.host._spawn(self.task, fn, args, sub, timestamp,
                                hint, label, kind="sub")

    def enqueue_super(self, fn: Callable, *args, ts: Optional[int] = None,
                      hint: Optional[int] = None,
                      label: Optional[str] = None) -> TaskDesc:
        sup = self.task.domain.require_super()
        creator = self.task.domain.creator
        timestamp = sup.validate_child_timestamp(
            creator.timestamp if creator is not None else None, ts)
        return self.host._spawn(self.task, fn, args, sup, timestamp,
                                hint, label, kind="super")


class SerialExecutor(AllocAPI):
    """Serial host with the same allocation/enqueue surface as Simulator."""

    def __init__(self, *, root_ordering: Ordering = Ordering.UNORDERED,
                 name: str = "serial", latency: Optional[LatencyModel] = None,
                 line_bytes: int = 64, include_task_overheads: bool = False,
                 task_overhead: int = 15):
        self.name = name
        self.space = AddressSpace(line_bytes, 1)
        self.memory = _SerialMemory()
        self.root_domain = Domain(root_ordering)
        self.latency = latency or LatencyModel()
        self.include_task_overheads = include_task_overheads
        self.task_overhead = task_overhead
        self._heap: List[Tuple[tuple, int, TaskDesc]] = []
        self._seq = 0
        self._keys: Dict[int, tuple] = {}   # task id -> serial key
        self._touched_lines: set = set()
        self.cycles = 0
        self.tasks_executed = 0
        self.emitted: List[Any] = []
        self._ran = False

    # ------------------------------------------------------------------
    def _access_cost(self, addr: int) -> int:
        line = self.space.line_of(addr)
        if line in self._touched_lines:
            return self.latency.l1_hit
        self._touched_lines.add(line)
        return self.latency.l2_hit

    # ------------------------------------------------------------------
    def enqueue_root(self, fn: Callable, *args, ts: Optional[int] = None,
                     hint: Optional[int] = None,
                     label: Optional[str] = None) -> TaskDesc:
        """Enqueue an initial root-domain task (mirrors Simulator)."""
        timestamp = self.root_domain.ordering.validate_timestamp(ts)
        task = TaskDesc(fn, args, self.root_domain,
                        timestamp=timestamp if
                        self.root_domain.ordering.is_ordered else None,
                        hint=hint, label=label)
        self._push(task, ((timestamp, self._next_seq()),))
        return task

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _push(self, task: TaskDesc, key: tuple) -> None:
        self._keys[task.tid] = key
        heapq.heappush(self._heap, (key, task.tid, task))

    def _spawn(self, parent: TaskDesc, fn, args, domain, timestamp, hint,
               label, kind: str) -> TaskDesc:
        child = TaskDesc(fn, args, domain,
                         timestamp=timestamp if domain.ordering.is_ordered
                         else None, hint=hint, parent=parent, label=label)
        pkey = self._keys[parent.tid]
        entry = (timestamp, self._next_seq())
        if kind == "same":
            key = pkey[:-1] + (entry,)
        elif kind == "sub":
            key = pkey + (entry,)
        else:
            if len(pkey) < 2:
                raise DomainError("root-domain tasks have no superdomain")
            key = pkey[:-2] + (entry,)
        self._push(child, key)
        return child

    # ------------------------------------------------------------------
    def run(self, max_tasks: Optional[int] = None) -> "SerialExecutor":
        """Execute every task to completion in serial order."""
        if self._ran:
            raise SimulationError("a SerialExecutor runs exactly once")
        self._ran = True
        while self._heap:
            _, _, task = heapq.heappop(self._heap)
            ctx = SerialContext(self, task)
            task.fn(ctx, *task.args)
            self.cycles += ctx.cycles
            if self.include_task_overheads:
                self.cycles += self.task_overhead
            self.tasks_executed += 1
            if max_tasks is not None and self.tasks_executed > max_tasks:
                raise SimulationError(f"exceeded max_tasks={max_tasks}")
        return self

    # ------------------------------------------------------------------
    def values_snapshot(self) -> Dict[int, Any]:
        """Copy of final memory for differential comparisons."""
        return dict(self.memory._values)
