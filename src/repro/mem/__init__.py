"""Speculative memory: versioned data, undo logs, and conflict detection.

This package implements the data-dependence speculation substrate of the
Swarm/Fractal architecture (paper Sec. 4.1):

- eager (undo-log-based) version management,
- eager conflict detection with an earlier-VT-wins policy,
- speculative data forwarding with dependence tracking, so that an abort
  selectively kills only descendants and data-dependent tasks,
- Bloom-filter signatures (2 Kbit, 8-way, H3 hashing) with modeled false
  positives, plus an idealized precise mode (paper Sec. 6.1).

Applications never touch this package directly; they use the typed wrappers
in :mod:`repro.mem.data` (arrays, cells, dicts, queues) through a task
context.
"""

from .address import AddressSpace, Region
from .bloom import BloomSignature, H3HashFamily, SignatureBank
from .undo_log import UndoLog
from .memory import SpecMemory, AccessRecord
from .conflicts import ConflictPolicy, BloomConflictModel, PreciseConflictModel
from .data import SpecArray, SpecCell, SpecDict, SpecQueue

__all__ = [
    "AddressSpace",
    "Region",
    "BloomSignature",
    "H3HashFamily",
    "SignatureBank",
    "UndoLog",
    "SpecMemory",
    "AccessRecord",
    "ConflictPolicy",
    "BloomConflictModel",
    "PreciseConflictModel",
    "SpecArray",
    "SpecCell",
    "SpecDict",
    "SpecQueue",
]
