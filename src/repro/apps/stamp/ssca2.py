"""STAMP ssca2: scalable graph kernel 1 — parallel graph construction.

Transactions insert batches of directed edges into a shared adjacency
structure: claim a slot from the target node's degree counter, then write
the edge into the node's slot array. Conflicts happen only when two
batches hit the same node concurrently, so the app scales almost linearly
— in the paper ssca2 reaches 277x at 256 cores with every configuration
(Fig. 17); the TM variant here only pays the software-queue tax.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...errors import AppError
from ...vt import Ordering
from .common import drive_workload, require_stamp_variant


@dataclass
class Ssca2Input:
    n_nodes: int
    max_degree: int
    edges: List[Tuple[int, int]]
    batch: int

    @property
    def n_batches(self) -> int:
        return (len(self.edges) + self.batch - 1) // self.batch


def make_input(n_nodes: int = 64, n_edges: int = 256, batch: int = 4,
               seed: int = 6) -> Ssca2Input:
    rng = random.Random(seed)
    edges = []
    degree = [0] * n_nodes
    max_degree = max(8, 4 * n_edges // n_nodes)
    while len(edges) < n_edges:
        u, v = rng.randrange(n_nodes), rng.randrange(n_nodes)
        if u != v and degree[u] < max_degree:
            degree[u] += 1
            edges.append((u, v))
    return Ssca2Input(n_nodes, max_degree, edges, batch)


def build(host, inp: Ssca2Input, variant: str = "fractal") -> Dict:
    require_stamp_variant(variant)
    count = host.array("ssca2.count", inp.n_nodes * 8)
    slots = host.array("ssca2.slots", inp.n_nodes * inp.max_degree, fill=-1)

    def insert_batch(ctx, bid):
        lo = bid * inp.batch
        for (u, v) in inp.edges[lo:lo + inp.batch]:
            k = count.get(ctx, u * 8)
            count.set(ctx, u * 8, k + 1)
            slots.set(ctx, u * inp.max_degree + k, v)
        ctx.compute(20 * min(inp.batch, len(inp.edges) - lo))

    drive_workload(host, inp.n_batches, insert_batch, variant,
                   hint_fn=lambda bid: inp.edges[bid * inp.batch][0],
                   label="insert")
    return {"count": count, "slots": slots}


def root_ordering(variant: str) -> Ordering:
    return Ordering.UNORDERED


def check(handles: Dict, inp: Ssca2Input) -> None:
    want: Dict[int, List[int]] = {}
    for (u, v) in inp.edges:
        want.setdefault(u, []).append(v)
    for u in range(inp.n_nodes):
        got_count = handles["count"].peek(u * 8)
        expect = want.get(u, [])
        if got_count != len(expect):
            raise AppError(f"node {u}: {got_count} edges, expected "
                           f"{len(expect)}")
        got = sorted(handles["slots"].peek(u * inp.max_degree + k)
                     for k in range(got_count))
        if got != sorted(expect):
            raise AppError(f"node {u}: adjacency mismatch")
