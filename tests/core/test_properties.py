"""Property-based tests: random Fractal programs must always serialize.

Hypothesis generates random task graphs — random read/write footprints
over a small address pool, random nesting (ordered and unordered
subdomains), random fan-outs — and runs them on random machine shapes.
Every run must commit all tasks, leave memory quiescent, and pass the
commit-order serializability audit. Ordered-only programs must further be
bit-identical to the serial reference executor.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Ordering, SerialExecutor, Simulator, SystemConfig

# --- program descriptions --------------------------------------------------

_op = st.tuples(st.sampled_from(["r", "w", "rmw"]),
                st.integers(min_value=0, max_value=11))

_leaf = st.lists(_op, min_size=1, max_size=4)

_task = st.recursive(
    _leaf.map(lambda ops: {"ops": ops, "sub": None}),
    lambda children: st.fixed_dictionaries({
        "ops": _leaf,
        "sub": st.tuples(
            st.sampled_from([Ordering.UNORDERED, Ordering.ORDERED_32]),
            st.lists(children, min_size=1, max_size=3)),
    }),
    max_leaves=6,
)

_program = st.lists(_task, min_size=1, max_size=6)


def _build(host, program, arr):
    def body(ctx, desc, salt):
        for i, (kind, slot) in enumerate(desc["ops"]):
            addr = slot * 8
            if kind == "r":
                arr.get(ctx, addr)
            elif kind == "w":
                arr.set(ctx, addr, salt * 37 + i)
            else:
                arr.add(ctx, addr, 1)
        sub = desc["sub"]
        if sub is not None:
            ordering, children = sub
            ctx.create_subdomain(ordering)
            for k, child in enumerate(children):
                ts = k if ordering.is_ordered else None
                ctx.enqueue_sub(body, child, salt * 7 + k + 1, ts=ts)

    for i, desc in enumerate(program):
        host.enqueue_root(body, desc, i + 1)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=_program,
       n_cores=st.sampled_from([1, 4, 16]),
       seed=st.integers(min_value=0, max_value=3))
def test_random_programs_serialize(program, n_cores, seed):
    sim = Simulator(SystemConfig.with_cores(n_cores, seed=seed))
    arr = sim.array("arr", 12 * 8)
    _build(sim, program, arr)
    sim.run(max_cycles=30_000_000)
    sim.audit()
    sim.memory.assert_quiescent()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=_program, n_cores=st.sampled_from([2, 8]))
def test_ordered_programs_match_serial(program, n_cores):
    """With an ordered root and ordered subdomains only, the result is
    deterministic: the speculative run must equal the serial reference."""

    def orderize(desc):
        if desc["sub"] is not None:
            _, children = desc["sub"]
            desc = dict(desc,
                        sub=(Ordering.ORDERED_32,
                             [orderize(c) for c in children]))
        return desc

    program = [orderize(d) for d in program]

    serial = SerialExecutor(root_ordering=Ordering.ORDERED_32)
    s_arr = serial.array("arr", 12 * 8)
    _build_ordered(serial, program, s_arr)
    serial.run()

    sim = Simulator(SystemConfig.with_cores(n_cores, conflict_mode="precise"),
                    root_ordering=Ordering.ORDERED_32)
    p_arr = sim.array("arr", 12 * 8)
    _build_ordered(sim, program, p_arr)
    sim.run(max_cycles=30_000_000)
    sim.audit()

    assert p_arr.snapshot() == s_arr.snapshot()


def _build_ordered(host, program, arr):
    def body(ctx, desc, salt):
        for i, (kind, slot) in enumerate(desc["ops"]):
            addr = slot * 8
            if kind == "r":
                arr.get(ctx, addr)
            elif kind == "w":
                arr.set(ctx, addr, salt * 37 + i)
            else:
                arr.add(ctx, addr, 1)
        sub = desc["sub"]
        if sub is not None:
            ordering, children = sub
            ctx.create_subdomain(ordering)
            for k, child in enumerate(children):
                ctx.enqueue_sub(body, child, salt * 7 + k + 1, ts=k)

    for i, desc in enumerate(program):
        host.enqueue_root(body, desc, i + 1, ts=i)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=_program)
def test_rmw_counters_conserve(program):
    """Every 'rmw' op increments; the final sum must equal the number of
    rmw ops executed, regardless of conflicts and aborts."""
    sim = Simulator(SystemConfig.with_cores(8))
    arr = sim.array("arr", 12 * 8)
    _build(sim, program, arr)

    def count(desc):
        n = sum(1 for kind, _ in desc["ops"] if kind == "rmw")
        has_writes = any(kind == "w" for kind, _ in desc["ops"])
        if desc["sub"] is not None:
            n += sum(count(c) for c in desc["sub"][1])
        return n

    # 'w' ops stomp slots with unrelated values, so only run this check on
    # programs without plain writes
    if any(_has_writes(d) for d in program):
        sim.run(max_cycles=30_000_000)
        sim.audit()
        return
    expected = sum(count(d) for d in program)
    sim.run(max_cycles=30_000_000)
    sim.audit()
    total = sum(arr.peek(slot * 8) for slot in range(12))
    assert total == expected


def _has_writes(desc):
    if any(kind == "w" for kind, _ in desc["ops"]):
        return True
    if desc["sub"] is not None:
        return any(_has_writes(c) for c in desc["sub"][1])
    return False
