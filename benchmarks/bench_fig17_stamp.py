"""Fig. 17: the STAMP feature ladder — TM, +HWQueues, +Hints, Fractal.

Paper: the TM ports of intruder/labyrinth/bayes barely scale; hardware
task queues rescue intruder and yada; spatial hints rescue genome and
kmeans; nesting rescues labyrinth and bayes. With the full stack all
eight scale (gmean 177x at 256 cores).

Ladder rungs here:

- ``TM``        — variant "tm",  hints off
- ``+HWQueues`` — variant "hwq", hints off
- ``+Hints``    — variant "hwq", hints on
- ``Fractal``   — variant "fractal", hints on
"""

import math

from _common import core_counts, emit, once, run_once
from repro.apps import (
    bayes, genome, intruder, kmeans, labyrinth, ssca2, vacation, yada)
from repro.bench.report import format_table

APPS = [
    ("ssca2", ssca2, {}),
    ("vacation", vacation, {}),
    ("kmeans", kmeans, {}),
    ("genome", genome, {}),
    ("intruder", intruder, {}),
    ("labyrinth", labyrinth, dict(x=10, y=10, z=2, n_paths=12)),
    ("bayes", bayes, {}),
    ("yada", yada, {}),
]
LADDER = [
    ("TM", "tm", False),
    ("+HWQueues", "hwq", False),
    ("+Hints", "hwq", True),
    ("Fractal", "fractal", True),
]


def sweep(cores, apps=APPS, tag=""):
    results = {}
    rows = []
    for name, app, params in apps:
        inp = app.make_input(**params)
        base = None
        for rung, variant, hints in LADDER:
            for n in cores:
                run = run_once(app, inp, variant, n, use_hints=hints)
                results[(name, rung, n)] = run
                if base is None:
                    base = run.makespan
        top = max(cores)
        rows.append([name]
                    + [f"{base / results[(name, rung, top)].makespan:.2f}x"
                       for rung, _, _ in LADDER])
    top = max(cores)
    speedups = [results[(name, "Fractal", top)]
                for name, _, _ in apps]
    if speedups:
        base_spans = {name: results[(name, "TM", min(cores))].makespan
                      for name, _, _ in apps}
        gmean = math.exp(sum(
            math.log(base_spans[name]
                     / results[(name, "Fractal", top)].makespan)
            for name, _, _ in apps) / len(apps))
        rows.append(["gmean(Fractal)", "", "", "", f"{gmean:.2f}x"])
    emit(f"fig17_stamp_{top}c{tag}",
         format_table(["app"] + [r for r, _, _ in LADDER], rows))
    return results


def bench_fig17_queue_bound_apps(benchmark):
    """HW task queues rescue the software-queue-bound apps."""
    cores = core_counts(quick=True)
    apps = [a for a in APPS if a[0] in ("ssca2", "intruder", "yada")]
    results = once(benchmark, lambda: sweep(cores, apps, tag="_queuebound"))
    top = max(cores)
    for name in ("ssca2", "intruder", "yada"):
        assert (results[(name, "+HWQueues", top)].makespan
                < results[(name, "TM", top)].makespan), name


def bench_fig17_nesting_apps(benchmark):
    """Fractal nesting rescues labyrinth and bayes."""
    cores = core_counts(quick=True)
    apps = [a for a in APPS if a[0] in ("labyrinth", "bayes")]
    results = once(benchmark, lambda: sweep(cores, apps, tag="_nesting"))
    top = max(cores)
    for name in ("labyrinth", "bayes"):
        assert (results[(name, "Fractal", top)].makespan
                < results[(name, "+Hints", top)].makespan), name


def bench_fig17_remaining_apps(benchmark):
    cores = core_counts(quick=True)
    apps = [a for a in APPS if a[0] in ("vacation", "kmeans", "genome")]
    results = once(benchmark, lambda: sweep(cores, apps, tag="_remaining"))
    top = max(cores)
    for name in ("vacation", "kmeans", "genome"):
        assert results[(name, "Fractal", top)].stats.tasks_committed > 0


if __name__ == "__main__":
    sweep(core_counts())
