"""Miscellaneous deterministic generators: 3D grids and random graphs."""

from __future__ import annotations

import random
from typing import Tuple

from ..errors import AppError
from .graph import Graph


def grid3d(x: int, y: int, z: int) -> Graph:
    """An x*y*z grid graph (labyrinth's routing substrate).

    Node id = (zi * y + yi) * x + xi; 6-neighbour connectivity.
    """
    if min(x, y, z) < 1:
        raise AppError("grid dimensions must be >= 1")
    n = x * y * z
    g = Graph(n, directed=False)

    def node(xi: int, yi: int, zi: int) -> int:
        return (zi * y + yi) * x + xi

    for zi in range(z):
        for yi in range(y):
            for xi in range(x):
                u = node(xi, yi, zi)
                if xi + 1 < x:
                    g.add_edge(u, node(xi + 1, yi, zi))
                if yi + 1 < y:
                    g.add_edge(u, node(xi, yi + 1, zi))
                if zi + 1 < z:
                    g.add_edge(u, node(xi, yi, zi + 1))
    return g


def random_graph(n: int, m: int, *, seed: int = 1, directed: bool = False,
                 weighted: bool = False) -> Graph:
    """A simple G(n, m)-style random graph (test workloads)."""
    if n < 2:
        raise AppError("random_graph needs n >= 2")
    rng = random.Random(seed)
    g = Graph(n, directed=directed)
    attempts = 0
    edges = set()
    while len(edges) < m and attempts < m * 20:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (u, v) if directed else (min(u, v), max(u, v))
        if key in edges:
            continue
        edges.add(key)
        g.add_edge(u, v, weight=rng.random() if weighted else None)
    return g
