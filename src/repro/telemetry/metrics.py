"""The metrics registry: labeled counters, gauges, and histograms.

One :class:`MetricsRegistry` per simulation is the single source of truth
for run accounting: the simulator increments registry metrics during the
run (cycles per category per core, task outcomes per domain depth,
enqueues per tile, ...) and :class:`repro.core.stats.RunStats` /
``CycleBreakdown`` are *rebuilt* from the registry at finalize — there is
no second set of books.

Metrics are identified by a name plus a set of ``key=value`` labels
(per-tile, per-core, per-domain-depth dimensions). Handles returned by
``counter()`` / ``gauge()`` / ``histogram()`` are cheap mutable cells the
hot paths cache and bump directly.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, object], ...]]


def _parse_bound(key: str):
    """Invert the ``le_<bound>`` snapshot bucket key back to its bound."""
    text = key[3:]
    try:
        return int(text)
    except ValueError:
        return float(text)


class Counter:
    """A monotonically increasing integer cell."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins; ``track_max`` keeps peaks)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, v) -> None:
        self.value = v

    def track_max(self, v) -> None:
        if v > self.value:
            self.value = v


class Histogram:
    """A fixed-bound histogram with sum/count (bucket = first bound >= v)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    DEFAULT_BOUNDS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
                      5000, 10000, 25000, 50000, 100000)

    def __init__(self, bounds: Optional[Iterable[float]] = None):
        self.bounds = tuple(bounds) if bounds is not None else self.DEFAULT_BOUNDS
        self.counts = [0] * (len(self.bounds) + 1)   # +1: overflow bucket
        self.sum = 0
        self.count = 0

    def observe(self, v) -> None:
        self.counts[bisect.bisect_left(self.bounds, v)] += 1
        self.sum += v
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        buckets = {f"le_{b}": c for b, c in zip(self.bounds, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {"buckets": buckets, "sum": self.sum, "count": self.count,
                "mean": self.mean}


class MetricsRegistry:
    """Get-or-create registry of labeled counters/gauges/histograms."""

    def __init__(self):
        self._counters: Dict[LabelKey, Counter] = {}
        self._gauges: Dict[LabelKey, Gauge] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}

    @staticmethod
    def _key(name: str, labels: dict) -> LabelKey:
        return (name, tuple(sorted(labels.items())))

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = self._key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter()
        return c

    def gauge(self, name: str, **labels) -> Gauge:
        key = self._key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge()
        return g

    def histogram(self, name: str, bounds: Optional[Iterable[float]] = None,
                  **labels) -> Histogram:
        key = self._key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(bounds)
        return h

    def inc(self, name: str, n: int = 1, **labels) -> None:
        """Convenience: increment the counter ``name{labels}`` by ``n``."""
        self.counter(name, **labels).inc(n)

    # ------------------------------------------------------------------
    def total(self, name: str, **match) -> int:
        """Sum of every counter named ``name`` whose labels ⊇ ``match``.

        ``total("cycles", category="committed")`` sums the per-core
        committed-cycle counters; ``total("cycles")`` sums all categories.
        """
        want = match.items()
        out = 0
        for (n, labels), c in self._counters.items():
            if n == name and all(kv in labels for kv in want):
                out += c.value
        return out

    def counters_named(self, name: str) -> List[Tuple[dict, Counter]]:
        """All ``(labels, counter)`` pairs for one metric name."""
        return [(dict(labels), c) for (n, labels), c in
                self._counters.items() if n == name]

    # ------------------------------------------------------------------
    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The cross-process aggregation path: farm workers ship their
        registry as a snapshot dict and the parent merges every job into
        one registry. Counters and histogram buckets add; gauges keep the
        maximum seen (the only merge that is order-independent).
        Histograms with different bucket bounds cannot be combined and
        raise ``ValueError``.
        """
        for row in snap.get("counters", ()):
            self.counter(row["name"], **row["labels"]).inc(row["value"])
        for row in snap.get("gauges", ()):
            self.gauge(row["name"], **row["labels"]).track_max(row["value"])
        for row in snap.get("histograms", ()):
            value = row["value"]
            buckets = value["buckets"]
            bounds = tuple(_parse_bound(k) for k in buckets if k != "inf")
            h = self.histogram(row["name"], bounds=bounds, **row["labels"])
            if h.bounds != bounds:
                raise ValueError(
                    f"histogram {row['name']!r} bucket bounds differ: "
                    f"{h.bounds} vs {bounds}")
            for i, b in enumerate(bounds):
                h.counts[i] += buckets[f"le_{b}"]
            h.counts[-1] += buckets["inf"]
            h.sum += value["sum"]
            h.count += value["count"]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe dump of every metric, labels inlined."""

        def row(key: LabelKey, value) -> dict:
            name, labels = key
            return {"name": name, "labels": dict(labels), "value": value}

        return {
            "counters": [row(k, c.value)
                         for k, c in sorted(self._counters.items(),
                                            key=lambda kv: repr(kv[0]))],
            "gauges": [row(k, g.value)
                       for k, g in sorted(self._gauges.items(),
                                          key=lambda kv: repr(kv[0]))],
            "histograms": [row(k, h.snapshot())
                           for k, h in sorted(self._histograms.items(),
                                              key=lambda kv: repr(kv[0]))],
        }
