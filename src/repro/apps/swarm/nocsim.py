"""Swarm nocsim: cycle-by-cycle mesh network-on-chip simulation.

Packets traverse a K x K mesh with X-Y dimension-ordered routing, one hop
per simulated NoC cycle, arbitrating for *links*: each directed link
carries at most one packet per cycle (a per-(link, cycle) claim word), and
a packet that loses arbitration retries next cycle. Link-level arbitration
is deadlock-free — a link is a per-cycle resource, never held across
cycles — while still serializing packets through congested columns.

Timestamp = (cycle, packet id): packets arbitrate round-robin by id within
a cycle, making the simulation deterministic and exactly checkable against
a plain-Python replay.

This is a simulator *running inside* the architecture simulator — the
paper's nocsim benchmark is exactly such a self-hosted workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...errors import AppError
from ...vt import Ordering
from ..common import require_variant


@dataclass
class NocInput:
    mesh: int
    packets: List[Tuple[int, int, int]]   # (inject cycle, src, dst)

    @property
    def n_routers(self) -> int:
        return self.mesh * self.mesh


def make_input(mesh: int = 4, n_packets: int = 24, seed: int = 25) -> NocInput:
    rng = random.Random(seed)
    n = mesh * mesh
    packets = []
    for _ in range(n_packets):
        src = rng.randrange(n)
        dst = rng.randrange(n)
        while dst == src:
            dst = rng.randrange(n)
        packets.append((rng.randrange(0, 8), src, dst))
    return NocInput(mesh, packets)


def _next_hop(mesh: int, cur: int, dst: int) -> int:
    """X-Y dimension-ordered routing."""
    cy, cx = divmod(cur, mesh)
    dy, dx = divmod(dst, mesh)
    if cx != dx:
        return cy * mesh + (cx + (1 if dx > cx else -1))
    return (cy + (1 if dy > cy else -1)) * mesh + cx


def _ts(cycle: int, packet: int, n_packets: int) -> int:
    return cycle * (n_packets + 1) + packet + 1


def reference(inp: NocInput) -> List[int]:
    """Plain replay with identical priorities; returns delivery cycles."""
    import heapq

    n_pkts = len(inp.packets)
    claimed = set()                      # (link-from, link-to, cycle)
    at = [None] * n_pkts
    delivered = [-1] * n_pkts
    events = [(_ts(c, p, n_pkts), p)
              for p, (c, _s, _d) in enumerate(inp.packets)]
    heapq.heapify(events)
    while events:
        ts, p = heapq.heappop(events)
        cycle = ts // (n_pkts + 1)
        _inject, src, dst = inp.packets[p]
        cur = src if at[p] is None else at[p]
        target = _next_hop(inp.mesh, cur, dst)
        if (cur, target, cycle) not in claimed:
            claimed.add((cur, target, cycle))
            at[p] = target
            if target == dst:
                delivered[p] = cycle
                continue
        heapq.heappush(events, (_ts(cycle + 1, p, n_pkts), p))
    return delivered


def build(host, inp: NocInput, variant: str = "swarm") -> Dict:
    require_variant(variant, ("swarm",))
    n_pkts = len(inp.packets)
    # generous capacity: every packet may claim one link per cycle over
    # its whole (contention-stretched) lifetime
    capacity = n_pkts * (4 * inp.mesh + n_pkts + 8)
    links = host.dict("noc.links", capacity=capacity)
    at = host.array("noc.at", n_pkts * 8, fill=-1)
    delivered = host.array("noc.delivered", n_pkts * 8, fill=-1)
    hops = host.array("noc.hops", n_pkts * 8)

    def step(ctx, p, cycle):
        _inject, src, dst = inp.packets[p]
        cur = at.get(ctx, p * 8)
        if cur == -1:
            cur = src
        target = _next_hop(inp.mesh, cur, dst)
        ctx.compute(6)
        if links.put_if_absent(ctx, (cur, target, cycle), p):
            at.set(ctx, p * 8, target)
            hops.add(ctx, p * 8, 1)
            if target == dst:
                delivered.set(ctx, p * 8, cycle)
                return
        ctx.enqueue(step, p, cycle + 1, ts=_ts(cycle + 1, p, n_pkts),
                    hint=target, label="hop")

    for p, (cycle, src, _dst) in enumerate(inp.packets):
        host.enqueue_root(step, p, cycle, ts=_ts(cycle, p, n_pkts),
                          hint=src, label="hop")
    return {"delivered": delivered, "at": at, "hops": hops, "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.ORDERED_32


def check(handles: Dict, inp: NocInput) -> int:
    """Delivery cycles must match the reference replay exactly; hop counts
    must equal each packet's Manhattan distance. Returns the last delivery
    cycle."""
    want = reference(inp)
    last = 0
    for p, (inject, src, dst) in enumerate(inp.packets):
        got = handles["delivered"].peek(p * 8)
        if got != want[p]:
            raise AppError(f"packet {p}: delivered {got}, expected {want[p]}")
        if got < 0:
            raise AppError(f"packet {p} never delivered")
        sy, sx = divmod(src, inp.mesh)
        dy, dx = divmod(dst, inp.mesh)
        manhattan = abs(sy - dy) + abs(sx - dx)
        if handles["hops"].peek(p * 8) != manhattan:
            raise AppError(
                f"packet {p} took {handles['hops'].peek(p * 8)} hops, "
                f"expected {manhattan}")
        if got < inject + manhattan - 1:
            raise AppError(f"packet {p} arrived impossibly early")
        last = max(last, got)
    return last
