"""Property tests: deterministic reservations equal the sequential loop.

Hypothesis generates random conflict graphs (each iteration claims a
random cavity of cells) and random round policies; the round-based engine
must always produce the same final state as running the loop
sequentially in index order, finish every iteration exactly once, and
never drop or duplicate an index across keep/pack carry-overs.
"""

from hypothesis import given, settings, strategies as st

from repro.specfor import SpecForPolicy, sequential_for, speculative_for

from .test_engine import CavityStep, greedy_reference

_N_CELLS = 8

_cavity = st.lists(st.integers(min_value=0, max_value=_N_CELLS - 1),
                   min_size=1, max_size=4, unique=True).map(tuple)

_cavities = st.lists(_cavity, min_size=0, max_size=24)

_policy = st.builds(
    SpecForPolicy,
    granularity=st.integers(min_value=1, max_value=10),
    throttle_after=st.just(2),
    serialize_after=st.just(4),
    max_tries=st.just(64),
)


@settings(max_examples=120, deadline=None)
@given(cavities=_cavities, policy=_policy)
def test_rounds_equal_sequential_loop(cavities, policy):
    n = len(cavities)
    spec = CavityStep(cavities, _N_CELLS)
    out = speculative_for(spec, n, policy=policy)

    seq = CavityStep(cavities, _N_CELLS)
    seq_commits = sequential_for(seq, n)

    assert spec.success == seq.success
    assert spec.owner == seq.owner
    assert out.done == n
    assert out.commits == seq_commits
    # oracle of the oracle: the plain greedy loop agrees too
    assert (spec.success, spec.owner) == greedy_reference(cavities, _N_CELLS)


@settings(max_examples=120, deadline=None)
@given(cavities=_cavities, policy=_policy)
def test_done_is_monotone_and_exact(cavities, policy):
    n = len(cavities)
    records = []
    out = speculative_for(CavityStep(cavities, _N_CELLS), n,
                          policy=policy, observer=records.append)
    dones = [r.done for r in records]
    assert dones == sorted(dones)
    if n:
        assert dones[-1] == n
    # every round's done increment equals what the round finished
    prev = 0
    for r in records:
        assert r.done - prev == r.committed + r.filtered
        assert r.done > prev  # well-formed steps always progress
        prev = r.done
    assert out.commits + out.filtered == n


@settings(max_examples=120, deadline=None)
@given(cavities=_cavities, policy=_policy)
def test_keep_pack_never_drops_or_duplicates(cavities, policy):
    n = len(cavities)
    records = []
    speculative_for(CavityStep(cavities, _N_CELLS), n,
                    policy=policy, observer=records.append)
    finished = []
    carried_prev = ()
    fresh_cursor = 0
    for r in records:
        # the batch is exactly: last round's carry-pool prefix (a
        # shrunken ladder rung may defer the rest), then fresh indices
        j = len(r.batch) - r.fresh
        fresh = tuple(range(fresh_cursor, fresh_cursor + r.fresh))
        assert r.batch == carried_prev[:j] + fresh
        assert len(set(r.batch)) == len(r.batch)
        fresh_cursor += r.fresh
        # next pool = this batch's losers, then the deferred tail
        in_next = set(r.carried)
        losers = tuple(i for i in r.batch if i in in_next)
        assert r.carried == losers + carried_prev[j:]
        finished.extend(i for i in r.batch if i not in in_next)
        carried_prev = r.carried
    assert sorted(finished) == list(range(n))
    assert carried_prev == ()
