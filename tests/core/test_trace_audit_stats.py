"""Tests for traces, the auditor, and run statistics."""

import pytest

from repro import Simulator, SystemConfig
from repro.core.audit import audit_serializability
from repro.core.stats import CycleBreakdown, RunStats
from repro.core.trace import Trace, render_timeline
from repro.errors import SerializabilityViolation


class _Committed:
    def __init__(self, seq, reads=None, writes=None):
        self.commit_seq = seq
        self.reads = reads or {}
        self.writes = writes or {}

    def __repr__(self):
        return f"<committed #{self.commit_seq}>"


class TestAuditor:
    def test_accepts_consistent_history(self):
        log = [
            _Committed(0, reads={1: 0}, writes={1: 10}),
            _Committed(1, reads={1: 10}, writes={1: 20}),
        ]
        assert audit_serializability({}, log, {1: 20}) == 2

    def test_rejects_stale_read(self):
        log = [
            _Committed(0, writes={1: 10}),
            _Committed(1, reads={1: 0}),  # should have seen 10
        ]
        with pytest.raises(SerializabilityViolation):
            audit_serializability({}, log, {1: 10})

    def test_rejects_wrong_final_memory(self):
        log = [_Committed(0, writes={1: 10})]
        with pytest.raises(SerializabilityViolation):
            audit_serializability({}, log, {1: 99})

    def test_respects_initial_snapshot(self):
        log = [_Committed(0, reads={5: "init"})]
        assert audit_serializability({5: "init"}, log, {5: "init"}) == 1

    def test_orders_by_commit_seq(self):
        log = [
            _Committed(1, reads={1: 10}),
            _Committed(0, writes={1: 10}),
        ]
        assert audit_serializability({}, log, {1: 10}) == 2

    def test_end_to_end_audit_on_real_run(self):
        sim = Simulator(SystemConfig.with_cores(8))
        cell = sim.cell("c", 0)
        for _ in range(20):
            sim.enqueue_root(lambda ctx: cell.add(ctx, 1))
        sim.run()
        sim.audit()


class TestTrace:
    def test_records_segments(self):
        trace = Trace()
        trace.record(0, 10, 20, "work", "committed")
        trace.record(0, 10, 10, "empty", "committed")  # zero-length dropped
        assert len(trace) == 1

    def test_render_shows_rows_per_core(self):
        trace = Trace()
        trace.record(0, 0, 50, "alpha", "committed")
        trace.record(1, 25, 75, "beta", "aborted")
        out = render_timeline(trace, n_cores=2, width=40)
        lines = out.splitlines()
        assert len(lines) == 3  # header + 2 cores
        assert "a" in lines[1]
        assert "x" in lines[2]  # aborted glyph

    def test_render_empty(self):
        assert "empty" in render_timeline(Trace(), n_cores=2)

    def test_glyph_override(self):
        trace = Trace()
        trace.record(0, 0, 10, "task", "committed")
        out = render_timeline(trace, n_cores=1, glyphs={"task": "#"})
        assert "#" in out


class TestStats:
    def test_breakdown_fractions_sum_to_one(self):
        bd = CycleBreakdown(committed=50, aborted=25, spill=5, stall=10,
                            empty=10)
        assert abs(sum(bd.fractions().values()) - 1.0) < 1e-9

    def test_empty_breakdown_safe(self):
        assert CycleBreakdown().fractions()["committed"] == 0.0

    def test_avg_task_length(self):
        stats = RunStats(tasks_committed=4)
        stats.breakdown.committed = 400
        assert stats.avg_task_length == 100.0

    def test_speedup_over(self):
        a = RunStats(makespan=1000)
        b = RunStats(makespan=100)
        assert b.speedup_over(a) == 10.0

    def test_abort_ratio(self):
        stats = RunStats(tasks_committed=3, tasks_aborted=1)
        assert stats.abort_ratio == 0.25

    def test_summary_mentions_key_numbers(self):
        sim = Simulator(SystemConfig.with_cores(4))
        cell = sim.cell("c", 0)
        sim.enqueue_root(lambda ctx: cell.set(ctx, 1))
        stats = sim.run()
        text = stats.summary()
        assert "1 committed" in text.replace(",", "")
        assert "cycles" in text
