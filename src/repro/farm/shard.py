"""Deterministic sharding of job sets across workers or CI machines.

Assignment is by a keyed hash of each item's stable key — never by list
position or arrival time — so a job lands on the same shard no matter
which other jobs run alongside it, which machine computes the split, or
how many times the sweep is re-run. That is what lets ``run_all.py
--shard K/N`` fan the bench suite across a CI matrix with no
coordination, and keeps any per-shard artifact layout reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, List, Sequence, TypeVar

from ..errors import ConfigError

T = TypeVar("T")


def shard_index(key: str, n_shards: int) -> int:
    """The shard (0-based) that ``key`` deterministically belongs to."""
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    h = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(h, "big") % n_shards


def deterministic_shards(items: Iterable[T], n_shards: int, *,
                         key: Callable[[T], str] = str) -> List[List[T]]:
    """Partition ``items`` into ``n_shards`` stable groups.

    Within each shard, items keep their input order. The split is a pure
    function of each item's ``key(item)`` string, so adding or removing
    unrelated items never moves an existing item between shards.
    """
    shards: List[List[T]] = [[] for _ in range(n_shards)]
    for item in items:
        shards[shard_index(key(item), n_shards)].append(item)
    return shards


def parse_shard(text: str) -> tuple:
    """Parse a ``K/N`` CLI shard selector into ``(k, n)``; 1-based K."""
    try:
        k_s, n_s = text.split("/", 1)
        k, n = int(k_s), int(n_s)
    except ValueError:
        raise ConfigError(f"shard must look like K/N, got {text!r}")
    if not (1 <= k <= n):
        raise ConfigError(f"shard K/N needs 1 <= K <= N, got {text!r}")
    return k, n


def select_shard(items: Sequence[T], k: int, n: int, *,
                 key: Callable[[T], str] = str) -> List[T]:
    """Items of 1-based shard ``k`` of ``n`` (order preserved)."""
    if not (1 <= k <= n):
        raise ConfigError(f"need 1 <= k <= n, got k={k}, n={n}")
    return [it for it in items if shard_index(key(it), n) == k - 1]
