"""Unit tests for task descriptors and domain objects."""

import pytest

from repro.core.domain import Domain
from repro.core.task import TaskDesc, TaskState
from repro.errors import DomainError
from repro.vt import Ordering


class TestDomain:
    def test_root_properties(self):
        root = Domain(Ordering.UNORDERED)
        assert root.is_root
        assert root.depth == 1
        with pytest.raises(DomainError):
            root.require_super()

    def test_nesting_depth(self):
        root = Domain(Ordering.UNORDERED)
        t = TaskDesc(lambda ctx: None, (), root)
        sub = Domain(Ordering.ORDERED_32, creator=t, parent=root)
        subsub = Domain(Ordering.UNORDERED, creator=t, parent=sub)
        assert sub.depth == 2
        assert subsub.depth == 3
        assert subsub.require_super() is sub

    def test_child_timestamp_rule(self):
        d = Domain(Ordering.ORDERED_32)
        assert d.validate_child_timestamp(5, 7) == 7
        assert d.validate_child_timestamp(5, 5) == 5
        with pytest.raises(DomainError):
            d.validate_child_timestamp(5, 4)

    def test_unordered_child_timestamp(self):
        d = Domain(Ordering.UNORDERED)
        assert d.validate_child_timestamp(None, None) == 0


class TestTaskDesc:
    def make(self, **kwargs):
        return TaskDesc(lambda ctx: None, (), Domain(Ordering.UNORDERED),
                        **kwargs)

    def test_ids_unique(self):
        assert self.make().tid != self.make().tid

    def test_initial_state(self):
        t = self.make()
        assert t.state is TaskState.PENDING
        assert t.is_live
        assert not t.is_speculative
        assert t.deps == set() and t.dependents == set()

    def test_begin_attempt_resets(self):
        t = self.make()
        t.children = [self.make()]
        t.aborted = True
        t.retry_after = 99
        t.begin_attempt()
        assert t.children == [] and not t.aborted and t.retry_after == 0
        assert t.attempt == 1

    def test_speculative_states(self):
        t = self.make()
        for state, spec in [(TaskState.RUNNING, True),
                            (TaskState.FINISHED, True),
                            (TaskState.FINISH_STALLED, True),
                            (TaskState.PENDING, False),
                            (TaskState.SPILLED, False)]:
            t.state = state
            assert t.is_speculative is spec

    def test_terminal_states_not_live(self):
        t = self.make()
        t.state = TaskState.COMMITTED
        assert not t.is_live
        t.state = TaskState.SQUASHED
        assert not t.is_live

    def test_still_executing_only_when_running(self):
        t = self.make()
        assert not t.still_executing()
        t.state = TaskState.RUNNING
        assert t.still_executing()
        t.state = TaskState.FINISHED
        assert not t.still_executing()

    def test_label_override(self):
        assert self.make(label="custom").label == "custom"
