"""Fig. 14b: core-cycle breakdowns of flat vs fractal versions at the top
core count (maxflow, labyrinth, bayes), under Bloom and precise conflict
detection.

Paper: flat versions are dominated by aborted work and stalls/emptiness;
fractal versions spend most cycles on committed work (aborts 7-24%).
"""

from _common import core_counts, emit, once, run_once
from repro.apps import bayes, labyrinth, maxflow
from repro.bench.report import format_table

APPS = [
    ("maxflow", maxflow, dict(b=4, layers=4), ("flat", "fractal")),
    ("labyrinth", labyrinth, dict(x=10, y=10, z=2, n_paths=12),
     ("hwq", "fractal")),
    ("bayes", bayes, dict(n_decisions=48), ("hwq", "fractal")),
]


def breakdowns(top, apps=APPS):
    rows = []
    results = {}
    for name, app, params, variants in apps:
        inp = app.make_input(**params)
        for v in variants:
            for mode in ("bloom", "precise"):
                run = run_once(app, inp, v, top, conflict_mode=mode)
                results[(name, v, mode)] = run
                f = run.stats.breakdown.fractions()
                rows.append([
                    f"{name}-{v}", mode,
                    f"{f['committed']:.1%}", f"{f['aborted']:.1%}",
                    f"{f['spill']:.1%}", f"{f['stall']:.1%}",
                    f"{f['empty']:.1%}",
                ])
    emit(f"fig14b_breakdowns_{top}c",
         format_table(["run", "conflicts", "commit", "abort", "spill",
                       "stall", "empty"], rows),
         runs=results.values())
    return results


def bench_fig14b_breakdowns(benchmark):
    top = max(core_counts(quick=True))
    results = once(benchmark, lambda: breakdowns(top))
    for name, _, _, (flat_v, frac_v) in APPS:
        flat = results[(name, flat_v, "bloom")].stats.breakdown.fractions()
        frac = results[(name, frac_v, "bloom")].stats.breakdown.fractions()
        # fractal's committed share must beat flat's (Fig. 14b shape)
        assert frac["committed"] > flat["committed"], name


if __name__ == "__main__":
    breakdowns(max(core_counts()))
