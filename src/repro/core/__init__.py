"""The Fractal execution model and its event-driven implementation.

- :mod:`repro.core.task` / :mod:`repro.core.domain` — the program model:
  tasks in a hierarchy of ordered/unordered domains (paper Sec. 3).
- :mod:`repro.core.api` — the low-level task interface (Listing 1).
- :mod:`repro.core.highlevel` — the OpenTM-style high-level interface
  (Table 1, Listing 2).
- :mod:`repro.core.simulator` — the Swarm-based implementation
  (paper Sec. 4): speculative out-of-order execution, fractal VTs,
  selective aborts, GVT commits, spills, and zooming.
- :mod:`repro.core.serial` — a non-speculative reference executor.
- :mod:`repro.core.audit` — post-run serializability checking.
"""

from .task import TaskDesc, TaskState
from .domain import Domain
from .api import TaskContext, TaskAborted
from .simulator import Simulator
from .serial import SerialExecutor
from .stats import RunStats, CycleBreakdown
from .audit import audit_serializability

__all__ = [
    "TaskDesc",
    "TaskState",
    "Domain",
    "TaskContext",
    "TaskAborted",
    "Simulator",
    "SerialExecutor",
    "RunStats",
    "CycleBreakdown",
    "audit_serializability",
]
