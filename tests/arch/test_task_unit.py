"""Tests for task units (task queue + commit queue) and the scheduler."""

import pytest

from repro.arch.scheduler import HintScheduler
from repro.arch.task_unit import TaskUnit


class _Task:
    def __init__(self, ts, tb=0):
        # keys are VT-shaped — ((ts, tb), ...) — as the queue's stripped
        # index (arch/frontier.py) requires
        self._key = ((ts, tb),)
        self.queue_tile = -1
        self.queue_token = 0

    def order_key(self):
        return self._key


class TestTaskQueue:
    def test_pop_lowest_key(self):
        unit = TaskUnit(0, 16, 4)
        tasks = [_Task(k) for k in (5, 1, 3)]
        for t in tasks:
            unit.enqueue(t)
        assert unit.pop_best() is tasks[1]
        assert unit.pop_best() is tasks[2]
        assert unit.pop_best() is tasks[0]
        assert unit.pop_best() is None

    def test_fifo_among_equal_keys(self):
        unit = TaskUnit(0, 16, 4)
        a, b = _Task(1), _Task(1)
        unit.enqueue(a)
        unit.enqueue(b)
        assert unit.pop_best() is a

    def test_lazy_remove(self):
        unit = TaskUnit(0, 16, 4)
        a, b = _Task(1), _Task(2)
        unit.enqueue(a)
        unit.enqueue(b)
        unit.remove(a)
        assert unit.pending_count == 1
        assert unit.pop_best() is b

    def test_peek_min_skips_stale(self):
        unit = TaskUnit(0, 16, 4)
        a, b = _Task(1), _Task(2)
        unit.enqueue(a)
        unit.enqueue(b)
        unit.remove(a)
        assert unit.peek_min_key() == ((2, 0),)

    def test_rebuild_rekeys(self):
        unit = TaskUnit(0, 16, 4)
        a, b = _Task(1), _Task(2)
        unit.enqueue(a)
        unit.enqueue(b)
        a._key, b._key = ((9, 0),), ((0, 0),)
        unit.rebuild()
        assert unit.pop_best() is b

    def test_live_pending_excludes_removed(self):
        unit = TaskUnit(0, 16, 4)
        tasks = [_Task(k) for k in range(4)]
        for t in tasks:
            unit.enqueue(t)
        unit.remove(tasks[2])
        assert set(unit.live_pending()) == {tasks[0], tasks[1], tasks[3]}

    def test_fill_fraction(self):
        unit = TaskUnit(0, 10, 4)
        for k in range(5):
            unit.enqueue(_Task(k))
        assert unit.fill_fraction == 0.5


class TestCommitQueue:
    def test_capacity(self):
        unit = TaskUnit(0, 16, 2)
        assert unit.acquire_commit_entry()
        assert unit.acquire_commit_entry()
        assert not unit.acquire_commit_entry()
        unit.release_commit_entry()
        assert unit.acquire_commit_entry()

    def test_peak_tracking(self):
        unit = TaskUnit(0, 16, 4)
        unit.acquire_commit_entry()
        unit.acquire_commit_entry()
        unit.release_commit_entry()
        assert unit.peak_commit == 2


class TestHintScheduler:
    def test_same_hint_same_tile(self):
        units = [TaskUnit(t, 64, 16) for t in range(8)]
        sched = HintScheduler(8, use_hints=True)
        a = sched.tile_for(42, units)
        b = sched.tile_for(42, units)
        assert a == b

    def test_no_hints_round_robin(self):
        units = [TaskUnit(t, 64, 16) for t in range(4)]
        sched = HintScheduler(4, use_hints=True)
        tiles = [sched.tile_for(None, units) for _ in range(8)]
        assert tiles == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_hints_disabled_round_robin(self):
        units = [TaskUnit(t, 64, 16) for t in range(4)]
        sched = HintScheduler(4, use_hints=False)
        tiles = [sched.tile_for(7, units) for _ in range(4)]
        assert tiles == [0, 1, 2, 3]

    def test_load_balancing_diverts_overload(self):
        units = [TaskUnit(t, 64, 16) for t in range(4)]
        sched = HintScheduler(4, use_hints=True, load_balance_threshold=4)
        home = sched.hint_home(99)
        for k in range(20):
            units[home].enqueue(_Task(k))
        assert sched.tile_for(99, units) != home

    def test_hints_spread_over_tiles(self):
        units = [TaskUnit(t, 64, 16) for t in range(8)]
        sched = HintScheduler(8, use_hints=True)
        homes = {sched.hint_home(h) for h in range(64)}
        assert len(homes) >= 6

    def test_single_tile(self):
        units = [TaskUnit(0, 64, 16)]
        sched = HintScheduler(1, use_hints=True)
        assert sched.tile_for(5, units) == 0
        assert sched.tile_for(None, units) == 0
