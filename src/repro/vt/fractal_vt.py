"""Fractal virtual times (paper Sec. 4.2, Figs. 11-12).

A fractal VT is the concatenation of one :class:`DomainVT` per enclosing
domain, compared lexicographically with right-zero-padding: a task's VT is a
strict prefix of every VT in the subdomain it creates, so the creator orders
immediately before its subdomain's tasks, and the whole subdomain orders
before any later task outside it. This single total order is what lets the
architecture enforce Fractal's cross-domain atomicity with plain fine-grain
(per-task) speculation.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..errors import VTBudgetExceeded, VTError
from .domain_vt import DomainVT


class FractalVT:
    """An immutable sequence of domain VTs with hardware bit accounting."""

    __slots__ = ("domains", "_key")

    def __init__(self, domains: Iterable[DomainVT]):
        self.domains: Tuple[DomainVT, ...] = tuple(domains)
        if not self.domains:
            raise VTError("a fractal VT needs at least one domain VT")
        self._key = tuple(d.key() for d in self.domains)

    # --- ordering -------------------------------------------------------
    def key(self) -> tuple:
        """Lexicographic sort key. Python's tuple comparison makes a strict
        prefix sort before its extensions, which implements the paper's
        right-zero-padding (domain VT keys are never all-zero once a real
        or lower-bound tiebreaker is set, because relative dispatch cycles
        start at 1)."""
        return self._key

    def __lt__(self, other: "FractalVT") -> bool:
        return self._key < other._key

    def __le__(self, other: "FractalVT") -> bool:
        return self._key <= other._key

    def __eq__(self, other) -> bool:
        return isinstance(other, FractalVT) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    # --- structure -------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of enclosing domains (1 = root-domain task)."""
        return len(self.domains)

    @property
    def bits(self) -> int:
        """Hardware bits this VT occupies (paper: 128-bit budget)."""
        return sum(d.bits for d in self.domains)

    @property
    def last(self) -> DomainVT:
        """The final (own-domain) component."""
        return self.domains[-1]

    def fits(self, budget_bits: int) -> bool:
        """True when this VT fits the hardware bit budget."""
        return self.bits <= budget_bits

    def check_budget(self, budget_bits: int) -> "FractalVT":
        """Return self, or raise :class:`VTBudgetExceeded` when over budget."""
        if not self.fits(budget_bits):
            raise VTBudgetExceeded(
                f"fractal VT needs {self.bits} bits > budget {budget_bits}; "
                f"zooming required")
        return self

    def is_prefix_of(self, other: "FractalVT") -> bool:
        """True when ``self`` is a strict prefix of ``other`` — i.e. ``other``
        lives in a domain (transitively) created by ``self``'s task."""
        n = len(self._key)
        return n < len(other._key) and other._key[:n] == self._key

    def shares_domain_with(self, other: "FractalVT") -> bool:
        """True when both tasks live in the same domain (same depth and
        identical prefix above the final domain VT)."""
        return (len(self._key) == len(other._key)
                and self._key[:-1] == other._key[:-1])

    # --- derivation (enqueue rules, paper Sec. 4.2) -----------------------
    def child_same_domain(self, dvt: DomainVT) -> "FractalVT":
        """VT prefix for a child enqueued to the caller's own domain: keep
        everything above the final domain VT, replace the final one."""
        return FractalVT(self.domains[:-1] + (dvt,))

    def child_subdomain(self, dvt: DomainVT) -> "FractalVT":
        """VT for a child enqueued to the caller's subdomain: the caller's
        full fractal VT with the child's domain VT appended."""
        return FractalVT(self.domains + (dvt,))

    def child_superdomain(self, dvt: DomainVT) -> "FractalVT":
        """VT for a child enqueued to the caller's superdomain: drop the
        caller's final two domain VTs, append the child's."""
        if len(self.domains) < 2:
            raise VTError("root-domain tasks have no superdomain")
        return FractalVT(self.domains[:-2] + (dvt,))

    def finalized(self, tb) -> "FractalVT":
        """This VT with the final domain VT's tiebreaker set at dispatch."""
        return FractalVT(self.domains[:-1] + (self.domains[-1].with_tiebreaker(tb),))

    # --- zooming (paper Sec. 4.3) ----------------------------------------
    def drop_base(self) -> "FractalVT":
        """Zoom-in shift: remove the (common) base domain VT."""
        if len(self.domains) < 2:
            raise VTError("cannot drop the only domain VT")
        return FractalVT(self.domains[1:])

    def with_base(self, dvt: DomainVT) -> "FractalVT":
        """Zoom-out shift: prepend a restored base domain VT."""
        return FractalVT((dvt,) + self.domains)

    # --- tiebreaker compaction (paper Sec. 4.4) ----------------------------
    def compacted(self, allocator) -> "FractalVT":
        """This VT after one tiebreaker compaction walk (paper Sec. 4.4)."""
        return FractalVT(d.compacted(allocator) for d in self.domains)

    def final_tiebreaker_saturated(self) -> bool:
        """True when compaction zeroed our own tiebreaker (abort condition)."""
        return self.domains[-1].saturated()

    def __repr__(self) -> str:
        return " | ".join(repr(d) for d in self.domains)
