"""Stress tests combining mechanisms: tiebreaker compaction, zooming, and
spills under real application workloads — all with audits."""

import pytest

from repro.apps import mis, silo
from repro.bench.harness import run_app
from repro.config import SystemConfig


class TestCompactionUnderLoad:
    def test_mis_with_tiny_tiebreakers(self):
        """Frequent wrap-around walks must not perturb results.

        14-bit tiebreakers on 8 cores leave 10 cycle bits: compaction
        fires every ~512 cycles, many times over this run.
        """
        inp = mis.make_input(scale=6, edge_factor=4)
        cfg = SystemConfig.with_cores(8, tiebreaker_bits=14,
                                      conflict_mode="precise")
        run = run_app(mis, inp, variant="fractal", n_cores=8, config=cfg,
                      audit=True, max_cycles=30_000_000)
        mis.check(run.handles, inp)
        assert run.stats.tiebreaker_wraparounds > 0

    def test_silo_with_tiny_tiebreakers(self):
        inp = silo.make_input(n_txns=48)
        cfg = SystemConfig.with_cores(8, tiebreaker_bits=14,
                                      conflict_mode="precise")
        run = run_app(silo, inp, variant="fractal", n_cores=8, config=cfg,
                      audit=True, max_cycles=30_000_000)
        silo.check(run.handles, inp)
        assert run.stats.tiebreaker_wraparounds > 0


class TestCombinedPressure:
    def test_mis_tiny_everything(self):
        """Small queues + small tiebreakers + bloom filters together."""
        inp = mis.make_input(scale=5, edge_factor=3)
        cfg = SystemConfig.with_cores(
            8, tiebreaker_bits=18, task_queue_per_core=12,
            commit_queue_per_core=4, conflict_mode="bloom", bloom_bits=512)
        run = run_app(mis, inp, variant="fractal", n_cores=8, config=cfg,
                      audit=True, max_cycles=60_000_000)
        mis.check(run.handles, inp)

    def test_zooming_with_spills(self):
        """Deep nesting under a tight VT budget AND tight task queues."""
        from repro.apps import zoomtree
        inp = zoomtree.make_input(fanout=3, depth=5)
        cfg = SystemConfig.with_cores(
            4, vt_bits=64, task_queue_per_core=16,
            conflict_mode="precise")
        run = run_app(zoomtree, inp, variant="fractal", n_cores=4,
                      config=cfg, audit=True, max_cycles=120_000_000)
        zoomtree.check(run.handles, inp)
        assert run.stats.zoom_ins > 0
