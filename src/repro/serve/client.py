"""A small blocking client for the serve API (stdlib ``http.client``).

Typical use::

    from repro.serve.client import ServeClient

    c = ServeClient("http://127.0.0.1:8177", api_key="key-alice")
    doc = c.submit({"app": "mis", "n_cores": 4,
                    "input": {"scale": 7, "seed": 1}})
    stats = c.result(doc["id"])["stats"]

    for kind, event in c.events(doc["id"]):
        print(kind, event)

Raises :class:`ServeAPIError` on any non-2xx response;
:class:`RateLimited` (a subclass) carries ``retry_after`` for 429s.

With ``retries=N`` the client absorbs up to N consecutive 429s per call
instead of raising: it sleeps for the server's ``Retry-After`` hint (or
the :mod:`repro.faults` exponential backoff curve, whichever is longer)
plus a deterministic seeded jitter so a herd of clients with distinct
seeds doesn't re-stampede the quota on the same tick.

The HTTP plumbing lives in :class:`HttpJsonClient`, shared with the
distributed-farm client (:mod:`repro.farm.dist.client`).
"""

from __future__ import annotations

import hashlib
import http.client
import json
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlsplit

from ..faults.resilience import ResiliencePolicy, backoff_delay

#: retry curve for 429 backoff; cycles read as milliseconds here
_RETRY_CURVE = ResiliencePolicy(backoff_base=250, backoff_factor=2.0,
                                backoff_cap=10_000)

#: hard ceiling on one retry sleep, seconds
RETRY_SLEEP_CAP_S = 30.0


class ServeAPIError(Exception):
    """A non-2xx response from the server."""

    def __init__(self, status: int, doc: dict) -> None:
        detail = doc.get("error") or f"HTTP {status}"
        super().__init__(f"{detail} (HTTP {status})")
        self.status = status
        self.doc = doc
        #: field-level validation errors (400 responses), if any
        self.errors: List[dict] = doc.get("errors") or []


class RateLimited(ServeAPIError):
    """429: over the tenant's rate or queue quota."""

    def __init__(self, status: int, doc: dict,
                 retry_after: float) -> None:
        super().__init__(status, doc)
        self.retry_after = retry_after
        self.reason = doc.get("reason", "rate")


class JobFailed(ServeAPIError):
    """The job finished with an error (result endpoint, HTTP 500)."""


def retry_delay_s(attempt: int, retry_after: float, seed: int, *,
                  cap_s: float = RETRY_SLEEP_CAP_S) -> float:
    """The sleep before retry number ``attempt`` (1-based) of a 429.

    Honors the server's Retry-After hint as a floor, grows along the
    shared :func:`repro.faults.backoff_delay` curve, adds up to +25%
    deterministic jitter keyed on ``(seed, attempt)``, and is capped at
    ``cap_s``. Pure function — the chaos tests pin its values.
    """
    curve_s = backoff_delay(_RETRY_CURVE, attempt) / 1000.0
    h = hashlib.blake2b(f"{seed}:{attempt}".encode(),
                        digest_size=8).digest()
    jitter = int.from_bytes(h, "big") / 2 ** 64        # [0, 1)
    delay = max(retry_after, curve_s) * (1.0 + 0.25 * jitter)
    return min(delay, cap_s)


class HttpJsonClient:
    """Blocking JSON-over-HTTP client plumbing for one endpoint.

    Not thread-safe — use one client per thread (they are cheap).
    ``retries`` bounds how many consecutive 429s one logical call will
    absorb (0 = raise immediately, the historic behavior); ``sleep`` is
    injectable so tests never wait.
    """

    def __init__(self, base_url: str, *, api_key: str = "",
                 token: str = "",
                 timeout: float = 60.0, retries: int = 0,
                 retry_seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http":
            raise ValueError(f"only http:// endpoints supported: {base_url}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.api_key = api_key
        #: shared wire secret sent as X-Repro-Token ("" = none)
        self.token = token
        self.timeout = timeout
        self.retries = retries
        self.retry_seed = retry_seed
        self._sleep = sleep
        self._conn: Optional[http.client.HTTPConnection] = None
        #: lifetime count of 429s absorbed by the retry loop
        self.n_rate_retries = 0

    # -- plumbing ------------------------------------------------------
    def _headers(self) -> Dict[str, str]:
        h = {"Content-Type": "application/json",
             "Accept": "application/json"}
        if self.api_key:
            h["X-API-Key"] = self.api_key
        if self.token:
            h["X-Repro-Token"] = self.token
        return h

    def _connect(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None
                 ) -> Tuple[int, Dict[str, str], dict]:
        payload = json.dumps(body).encode() if body is not None else None
        for attempt in (1, 2):
            conn = self._connect()
            try:
                conn.request(method, path, body=payload,
                             headers=self._headers())
                resp = conn.getresponse()
                raw = resp.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                # stale keep-alive connection: reconnect once
                self.close()
                if attempt == 2:
                    raise
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            doc = {"error": raw.decode("utf-8", "replace")[:200]}
        headers = {k.lower(): v for k, v in resp.getheaders()}
        return resp.status, headers, doc

    def _checked_once(self, method: str, path: str,
                      body: Optional[dict] = None) -> dict:
        status, headers, doc = self._request(method, path, body)
        if status == 429:
            retry_after = float(doc.get("retry_after")
                                or headers.get("retry-after") or 1.0)
            raise RateLimited(status, doc, retry_after)
        if status >= 400:
            raise ServeAPIError(status, doc)
        return doc

    def _checked(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        attempt = 0
        while True:
            try:
                return self._checked_once(method, path, body)
            except RateLimited as exc:
                attempt += 1
                if attempt > self.retries:
                    raise
                self.n_rate_retries += 1
                self._sleep(retry_delay_s(attempt, exc.retry_after,
                                          self.retry_seed))


class ServeClient(HttpJsonClient):
    """Client for one serve endpoint (see module docs)."""

    # -- API -----------------------------------------------------------
    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics(self) -> dict:
        return self._checked("GET", "/metrics")

    def jobs(self) -> List[dict]:
        return self._checked("GET", "/v1/jobs")["jobs"]

    def submit(self, spec: dict) -> dict:
        """POST a JobSpec document; returns the job document (its ``id``
        is the content address, ``outcome`` is queued/coalesced/warm)."""
        return self._checked("POST", "/v1/jobs", spec)

    def status(self, job_id: str) -> dict:
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str, *, wait: bool = True,
               timeout: float = 300.0, poll_s: float = 0.1) -> dict:
        """The job's result document (``stats`` is RunStats JSON).

        With ``wait`` (default) polls until the job leaves the queue;
        raises :class:`JobFailed` if it failed, ``TimeoutError`` if it
        does not finish in ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            status, _headers, doc = self._request(
                "GET", f"/v1/jobs/{job_id}/result")
            if status == 200:
                return doc
            if status == 500:
                raise JobFailed(status, doc)
            if status == 409 and wait:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"job {job_id} not finished after {timeout}s")
                time.sleep(poll_s)
                continue
            raise ServeAPIError(status, doc)

    def run(self, spec: dict, *, timeout: float = 300.0,
            poll_s: float = 0.1) -> dict:
        """Submit and wait: returns the result document."""
        doc = self.submit(spec)
        return self.result(doc["id"], timeout=timeout, poll_s=poll_s)

    def events(self, job_id: str,
               timeout: float = 300.0) -> Iterator[Tuple[str, dict]]:
        """Stream the job's SSE feed as ``(kind, event_dict)`` pairs.

        Replays the buffered history first, then live events; returns
        when the job's final event arrives or the server closes the
        stream. Uses a dedicated connection (SSE holds it open).
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events",
                         headers={**self._headers(),
                                  "Accept": "text/event-stream"})
            resp = conn.getresponse()
            if resp.status != 200:
                raw = resp.read()
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except ValueError:
                    doc = {"error": raw.decode("utf-8", "replace")[:200]}
                raise ServeAPIError(resp.status, doc)
            kind, data = "event", []
            while True:
                line = resp.fp.readline()
                if not line:
                    return
                line = line.decode("utf-8").rstrip("\n").rstrip("\r")
                if not line:                 # frame boundary
                    if data:
                        event = json.loads("\n".join(data))
                        yield kind, event
                        if event.get("final"):
                            return
                    kind, data = "event", []
                elif line.startswith(":"):
                    continue                 # keepalive comment
                elif line.startswith("event:"):
                    kind = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data.append(line[len("data:"):].strip())
        finally:
            conn.close()

    def wait_ready(self, timeout: float = 10.0) -> dict:
        """Poll ``/healthz`` until the server answers (startup helper)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except (ConnectionError, ServeAPIError, OSError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
