"""Tiled-multicore architecture model (paper Sec. 4.1, Fig. 8, Table 2).

The chip is a K x K mesh of tiles; each tile holds a few simple cores, a
task unit (task queue + commit queue), and a slice of the shared L3. This
package provides the *mechanisms*; :mod:`repro.core.simulator` orchestrates
them into the event-driven execution engine.
"""

from .noc import MeshNoC
from .cache import CacheModel
from .tile import Core, Tile
from .task_unit import TaskUnit
from .spill import SpillBuffer, CoalescerJob, SplitterJob
from .scheduler import HintScheduler
from .gvt import GvtArbiter

__all__ = [
    "MeshNoC",
    "CacheModel",
    "Core",
    "Tile",
    "TaskUnit",
    "SpillBuffer",
    "CoalescerJob",
    "SplitterJob",
    "HintScheduler",
    "GvtArbiter",
]
