"""Write-ahead journal for the dist coordinator (``repro.dist-journal/1``).

PR 7's coordinator tolerated *agent* death but was itself a single point
of failure: every sweep, fragment, and lease lived in memory. This
module is the persistence layer that closes that gap — an append-only
journal of coordinator state transitions plus an atomically-replaced
snapshot, from which a restarted coordinator reconstructs its exact
state and finishes an in-flight sweep byte-identical to an
uninterrupted run.

Layout of a journal directory::

    <journal-dir>/
        wal.jsonl       append-only tail of framed records
        snapshot.json   latest compaction point (atomic rename)

**Record framing.** Each WAL line is::

    <length:08x> <blake2b-16hex> <payload-json>\\n

where ``length`` is the byte length of the JSON payload and the
checksum is ``blake2b(payload, digest_size=8)``. The framing makes a
*torn final record* — the classic crash-during-write artifact —
detectable without ambiguity: a record is accepted only if its length
matches, its checksum matches, and its newline terminator arrived.
Replay stops at the first bad record, so recovery always yields a
**prefix-consistent** state (a state the live coordinator actually
passed through); the torn bytes are truncated away when the writer
reopens the file.

**Payloads.** Every payload carries a strictly increasing ``seq`` and a
``kind``; the coordinator-specific kinds (:data:`KINDS`) are sweep
submission, agent registration/loss, lease grants/expiries, and
exactly-once result recordings.

**Durability.** ``append`` buffers; :meth:`JournalWriter.sync` flushes
and fsyncs once per coordinator request (a *batch* of appends), so an
acknowledged submit or delivery is on disk before the client sees the
response.

**Compaction.** :meth:`JournalWriter.write_snapshot` dumps the full
state to ``snapshot.json.tmp``, fsyncs, atomically renames it over
``snapshot.json``, then resets the WAL. A crash between the rename and
the reset is safe: the snapshot stamps the ``seq`` it covers and replay
skips WAL records at or below it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, List, Optional

#: schema tag stamped into every snapshot
JOURNAL_SCHEMA = "repro.dist-journal/1"

WAL_NAME = "wal.jsonl"
SNAPSHOT_NAME = "snapshot.json"

#: record kinds the coordinator journals (see coordinator._apply_journal)
KINDS = ("sweep", "register", "agent_lost", "lease", "expire", "record")

_CHECKSUM_BYTES = 8          # blake2b digest size -> 16 hex chars


class JournalError(ValueError):
    """A frame or snapshot failed structural validation."""


def frame_record(payload: bytes) -> bytes:
    """Wrap one JSON payload in the length+checksum frame."""
    digest = hashlib.blake2b(payload,
                             digest_size=_CHECKSUM_BYTES).hexdigest()
    return b"%08x %s %s\n" % (len(payload), digest.encode("ascii"),
                              payload)


def parse_frame(line: bytes) -> dict:
    """Decode one framed WAL line; raises :class:`JournalError` on any
    torn, truncated, or corrupted record."""
    if not line.endswith(b"\n"):
        raise JournalError("torn record: missing newline terminator")
    body = line[:-1]
    parts = body.split(b" ", 2)
    if len(parts) != 3:
        raise JournalError("malformed frame: expected "
                           "'<len> <checksum> <payload>'")
    len_hex, checksum, payload = parts
    try:
        length = int(len_hex, 16)
    except ValueError:
        raise JournalError(f"malformed frame length {len_hex!r}")
    if length != len(payload):
        raise JournalError(f"frame length mismatch: header says {length}, "
                           f"got {len(payload)} bytes (torn write?)")
    digest = hashlib.blake2b(payload,
                             digest_size=_CHECKSUM_BYTES).hexdigest()
    if digest.encode("ascii") != checksum:
        raise JournalError("frame checksum mismatch (corrupted record)")
    try:
        rec = json.loads(payload.decode("utf-8"))
    except ValueError as exc:
        raise JournalError(f"frame payload is not JSON: {exc}")
    if not isinstance(rec, dict) or "seq" not in rec or "kind" not in rec:
        raise JournalError("frame payload missing seq/kind")
    return rec


class JournalReplay:
    """The decoded contents of a journal directory (see
    :func:`read_journal`)."""

    def __init__(self) -> None:
        #: the snapshot document (``{"seq", "t", "state"}``) or None
        self.snapshot: Optional[dict] = None
        #: WAL records newer than the snapshot, in append order
        self.records: List[dict] = []
        #: byte offset of the last good WAL record's end
        self.wal_offset: int = 0
        #: a torn/corrupt record (or garbage tail) was truncated away
        self.truncated_tail: bool = False
        #: records skipped because the snapshot already covers them
        self.n_covered: int = 0

    @property
    def snapshot_seq(self) -> int:
        return 0 if self.snapshot is None else int(self.snapshot["seq"])

    @property
    def next_seq(self) -> int:
        """The seq the writer should continue from."""
        last = self.records[-1]["seq"] if self.records else 0
        return max(self.snapshot_seq, last)

    @property
    def empty(self) -> bool:
        return self.snapshot is None and not self.records


def read_journal(root: str) -> JournalReplay:
    """Read ``root``'s snapshot + WAL tail into a :class:`JournalReplay`.

    Never raises on torn or corrupt WAL content — replay stops at the
    first bad record (``truncated_tail`` is set) so the result is always
    a prefix of the true history. A corrupt *snapshot* does raise
    :class:`JournalError`: the snapshot is written atomically, so damage
    there is not a crash artifact but real corruption the operator must
    see.
    """
    out = JournalReplay()
    snap_path = os.path.join(root, SNAPSHOT_NAME)
    if os.path.exists(snap_path):
        try:
            with open(snap_path, "rb") as fh:
                doc = json.load(fh)
        except ValueError as exc:
            raise JournalError(f"corrupt snapshot {snap_path}: {exc}")
        if not isinstance(doc, dict) \
                or doc.get("schema") != JOURNAL_SCHEMA \
                or "seq" not in doc or "state" not in doc:
            raise JournalError(f"bad snapshot document in {snap_path}")
        out.snapshot = doc
    wal_path = os.path.join(root, WAL_NAME)
    if not os.path.exists(wal_path):
        return out
    floor = out.snapshot_seq
    offset = 0
    with open(wal_path, "rb") as fh:
        for raw in fh:
            try:
                rec = parse_frame(raw)
            except JournalError:
                out.truncated_tail = True
                break
            seq = rec["seq"]
            if not isinstance(seq, int):
                out.truncated_tail = True
                break
            if seq <= floor:
                out.n_covered += 1
            elif out.records and seq <= out.records[-1]["seq"]:
                # non-monotonic seq: treat like corruption, keep prefix
                out.truncated_tail = True
                break
            else:
                out.records.append(rec)
            offset += len(raw)
    out.wal_offset = offset
    return out


class JournalWriter:
    """Appends framed records to a WAL, with fsync'd batches and
    snapshot compaction. Not thread-safe — the coordinator serializes
    all journal access under its own lock."""

    def __init__(self, root: str, *, fsync: bool = True,
                 start_seq: int = 0,
                 wal_offset: Optional[int] = None) -> None:
        self.root = root
        self._fsync = fsync
        self.seq = start_seq
        os.makedirs(root, exist_ok=True)
        self._wal_path = os.path.join(root, WAL_NAME)
        if wal_offset is not None and os.path.exists(self._wal_path):
            # recovery: drop any torn tail before appending
            self._fh = open(self._wal_path, "r+b")
            self._fh.truncate(wal_offset)
            self._fh.seek(wal_offset)
        else:
            self._fh = open(self._wal_path, "ab")
        self._dirty = False
        self._closed = False
        self.n_appended = 0
        self.n_since_snapshot = 0
        self.n_syncs = 0
        self.n_snapshots = 0

    # -- appends -------------------------------------------------------
    def append(self, kind: str, doc: Dict[str, Any]) -> int:
        """Buffer one record; returns its seq. Call :meth:`sync` to make
        the batch durable before acknowledging it to a client."""
        if self._closed:
            raise JournalError("journal is closed")
        self.seq += 1
        payload = json.dumps({"seq": self.seq, "kind": kind, **doc},
                             separators=(",", ":"),
                             sort_keys=True).encode("utf-8")
        self._fh.write(frame_record(payload))
        self._dirty = True
        self.n_appended += 1
        self.n_since_snapshot += 1
        return self.seq

    def sync(self) -> None:
        """Flush + fsync the batch of appends since the last sync."""
        if not self._dirty or self._closed:
            return
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())
        self._dirty = False
        self.n_syncs += 1

    # -- compaction ----------------------------------------------------
    def write_snapshot(self, state: Dict[str, Any]) -> None:
        """Atomically replace the snapshot with ``state`` and reset the
        WAL (see module docs for the crash-window argument)."""
        self.sync()
        doc = {"schema": JOURNAL_SCHEMA, "seq": self.seq,
               "t": time.time(), "state": state}
        snap_path = os.path.join(self.root, SNAPSHOT_NAME)
        tmp_path = snap_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            if self._fsync:
                os.fsync(fh.fileno())
        os.replace(tmp_path, snap_path)
        self._fsync_dir()
        # reset the WAL: everything up to self.seq is in the snapshot
        self._fh.close()
        self._fh = open(self._wal_path, "wb")
        self._dirty = False
        self.n_since_snapshot = 0
        self.n_snapshots += 1

    def _fsync_dir(self) -> None:
        if not self._fsync:
            return
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:                       # pragma: no cover (platform)
            return
        try:
            os.fsync(fd)
        except OSError:                       # pragma: no cover (platform)
            pass
        finally:
            os.close(fd)

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self.sync()
        self._closed = True
        self._fh.close()

    def stats(self) -> dict:
        return {"dir": str(self.root), "seq": self.seq,
                "appended": self.n_appended, "syncs": self.n_syncs,
                "snapshots": self.n_snapshots,
                "since_snapshot": self.n_since_snapshot}


def resume(root: str, *, fsync: bool = True
           ) -> "tuple[JournalWriter, JournalReplay]":
    """Open ``root`` for recovery: read what survived, position the
    writer after the last good record (truncating any torn tail)."""
    replay = read_journal(root)
    writer = JournalWriter(root, fsync=fsync, start_seq=replay.next_seq,
                           wal_offset=replay.wal_offset)
    return writer, replay
