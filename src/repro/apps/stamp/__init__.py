"""STAMP benchmark suite ports (paper Sec. 6.4, Fig. 17; Minh et al. [42]).

All eight STAMP applications, each exposing the Fig. 17 feature ladder:

- ``variant="tm"`` — the original transactional port: coarse transactions,
  and (where STAMP used them) *software* task queues held in transactional
  memory, whose head/tail contention throttles scaling.
- ``variant="hwq"`` — +HWQueues: the same transactions fed through the
  hardware task queues (one task per transaction).
- spatial hints are a config switch (``SystemConfig.use_hints``); the
  bench ladder runs hwq with hints on ("+Hints").
- ``variant="fractal"`` — nested parallelism where the paper found it
  (labyrinth, bayes); elsewhere fractal == hints (no nesting opportunity),
  matching Fig. 17's converging curves.

Each module follows the :mod:`repro.apps` convention.
"""

from . import bayes, genome, intruder, kmeans, labyrinth, ssca2, vacation, yada

__all__ = ["bayes", "genome", "intruder", "kmeans", "labyrinth", "ssca2",
           "vacation", "yada"]
