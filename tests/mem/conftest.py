"""Shared fixtures for speculative-memory tests: standalone owners and a
minimal context, so the memory subsystem is exercised without a simulator."""

import pytest

from repro.mem import AddressSpace, SpecMemory
from repro.mem.conflicts import PreciseConflictModel


class FakeOwner:
    """A stand-in task attempt with a fixed VT key."""

    def __init__(self, key):
        self._key = key
        self.aborted = False
        self.children = []
        self.parent = None
        self.state = "running"

    def order_key(self):
        return self._key

    def still_executing(self):
        """FakeOwners act as instantaneous (already-finished) tasks unless a
        test flips this flag to model an in-flight writer."""
        return getattr(self, "executing", False)

    def __repr__(self):
        return f"FakeOwner{self._key}"


class FakeCtx:
    """Minimal ctx for the typed data wrappers."""

    def __init__(self, mem, owner):
        self.mem = mem
        self.owner = owner

    def load(self, addr):
        return self.mem.load(self.owner, addr)

    def store(self, addr, value):
        self.mem.store(self.owner, addr, value)


class AbortRecorder:
    """An abort_cascade hook that rolls victims back and records them."""

    def __init__(self, mem):
        self.mem = mem
        self.aborted = []

    def __call__(self, victims, reason):
        cascade = []
        stack = list(victims)
        seen = set()
        while stack:
            v = stack.pop()
            if id(v) in seen:
                continue
            seen.add(id(v))
            cascade.append(v)
            stack.extend(getattr(v, "dependents", ()))
        for v in sorted(cascade, key=lambda o: o.order_key(), reverse=True):
            v.aborted = True
            self.mem.rollback(v)
            self.aborted.append(v)


@pytest.fixture
def space():
    return AddressSpace(line_bytes=64, n_tiles=4)


@pytest.fixture(params=["fast", "scalar", "audit"])
def mem(request, space):
    """Every memory test runs under all three probe engines: the scalar
    reference, the memoized fast path, and the self-checking audit engine
    (which raises on any fast/scalar divergence as the test executes)."""
    m = SpecMemory(space, PreciseConflictModel(), engine=request.param)
    m.abort_cascade = AbortRecorder(m)
    return m


@pytest.fixture
def owner_factory(mem):
    def make(key):
        o = FakeOwner((key,))
        mem.attach_owner(o)
        return o
    return make
