"""Per-task eager undo logs (paper Sec. 4.1: LogTM-SE-style versioning).

Each speculative task owns an :class:`UndoLog` recording, for every word it
wrote, the value the word held *before the task's first write to it*.
Rolling a task back restores those values in reverse write order. Because
the simulator aborts cascades latest-first and write chains are kept in
virtual-time order, a task is always the most recent writer of its logged
words at the moment it rolls back.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple


class UndoLog:
    """Insertion-ordered map of word address → pre-image value."""

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries: Dict[int, Any] = {}

    def record(self, addr: int, prev_value: Any) -> None:
        """Log the pre-image for ``addr`` if this is the owner's first write."""
        if addr not in self._entries:
            self._entries[addr] = prev_value

    def __contains__(self, addr: int) -> bool:
        return addr in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def reversed_entries(self) -> Iterator[Tuple[int, Any]]:
        """(addr, pre-image) pairs, most recent first — rollback order."""
        return reversed(list(self._entries.items()))

    def clear(self) -> None:
        """Drop all entries (commit path)."""
        self._entries.clear()
