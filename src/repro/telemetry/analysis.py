"""Derived analyses over a recorded event stream / metrics registry.

Offline answers to the questions the paper's evaluation asks of a run:
where aborted work comes from (cascade sizes and chain depths), which
addresses are contended (conflict hot-address top-K), and how abort
behaviour varies with nesting depth (per-domain-depth abort ratios —
the Figs. 14b/15b narrative).
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Dict, Iterable, List, Tuple

from .events import Event
from .metrics import MetricsRegistry


def abort_cascades(events: Iterable[Event]) -> List[dict]:
    """Summarize every abort cascade in the stream.

    Returns one dict per cascade id: ``{"cascade", "t", "size", "depth",
    "aborted", "squashed", "reasons"}`` where ``depth`` is the longest
    victim chain (max hop + 1) — how far one conflict propagated through
    children and data-dependents.
    """
    agg: Dict[int, dict] = {}
    for e in events:
        if e.KIND not in ("abort", "squash") or getattr(e, "cascade", -1) < 0:
            continue
        c = agg.get(e.cascade)
        if c is None:
            c = agg[e.cascade] = {"cascade": e.cascade, "t": e.t, "size": 0,
                                  "depth": 0, "aborted": 0, "squashed": 0,
                                  "reasons": set()}
        c["size"] += 1
        c["depth"] = max(c["depth"], e.hop + 1)
        c["aborted" if e.KIND == "abort" else "squashed"] += 1
        c["reasons"].add(e.reason)
    out = sorted(agg.values(), key=lambda c: c["cascade"])
    for c in out:
        c["reasons"] = sorted(c["reasons"])
    return out


def abort_chain_depth_histogram(events: Iterable[Event]) -> Dict[int, int]:
    """Cascade chain depth -> number of cascades reaching it."""
    hist: Dict[int, int] = {}
    for c in abort_cascades(events):
        hist[c["depth"]] = hist.get(c["depth"], 0) + 1
    return dict(sorted(hist.items()))


def conflict_hot_addresses(events: Iterable[Event],
                           k: int = 10) -> List[Tuple[int, int]]:
    """Top-``k`` conflicting cache lines as ``(line, n_conflicts)``.

    Each conflict event counts once per victim it killed — the cost
    measure, not the occurrence measure.
    """
    tally: TallyCounter = TallyCounter()
    for e in events:
        if e.KIND == "conflict":
            tally[e.line] += max(len(e.victims), 1)
    return tally.most_common(k)


def per_depth_abort_ratios(metrics: MetricsRegistry) -> Dict[int, float]:
    """Domain depth -> aborted attempts / all attempts at that depth.

    Reads the ``tasks{outcome=,depth=}`` counters the simulator maintains;
    depths with no attempts are omitted.
    """
    committed: Dict[int, int] = {}
    aborted: Dict[int, int] = {}
    for labels, counter in metrics.counters_named("tasks"):
        depth = labels.get("depth")
        if depth is None:
            continue
        if labels.get("outcome") == "committed":
            committed[depth] = committed.get(depth, 0) + counter.value
        elif labels.get("outcome") == "aborted":
            aborted[depth] = aborted.get(depth, 0) + counter.value
    out: Dict[int, float] = {}
    for depth in sorted(set(committed) | set(aborted)):
        attempts = committed.get(depth, 0) + aborted.get(depth, 0)
        if attempts:
            out[depth] = aborted.get(depth, 0) / attempts
    return out


def summarize(events: Iterable[Event], metrics: MetricsRegistry,
              top_k: int = 5) -> dict:
    """One-stop derived-analysis bundle for reports and the metrics JSON."""
    events = list(events)
    cascades = abort_cascades(events)
    return {
        "abort_cascades": len(cascades),
        "max_abort_chain_depth": max((c["depth"] for c in cascades),
                                     default=0),
        "abort_chain_depth_histogram": abort_chain_depth_histogram(events),
        "conflict_hot_addresses": conflict_hot_addresses(events, top_k),
        "per_depth_abort_ratios": per_depth_abort_ratios(metrics),
    }
