#!/usr/bin/env python
"""The paper's database case study (Secs. 1, 2.2): composing transactions.

Runs the silo-style TPC-C-lite workload under all three execution models —
silo-flat (one HTM transaction per database transaction), silo-swarm
(fine-grain tasks with hand-carved timestamp ranges, Fig. 5), and
silo-fractal (each transaction is an ordered subdomain) — and reports the
comparison the paper makes: fractal matches swarm's performance *without*
coupling the transaction launcher to the per-transaction task count.

Run:  python examples/transactional_db.py
"""

from repro.apps import silo
from repro.bench.harness import run_app

N_CORES = 16


def main():
    inp = silo.make_input(n_warehouses=2, n_districts=4, n_txns=96)
    n_orders = sum(1 for t in inp.txns if t.kind == "new_order")
    print(f"workload: {len(inp.txns)} transactions "
          f"({n_orders} new-order, {len(inp.txns) - n_orders} payment)\n")

    results = {}
    for variant in ("flat", "swarm", "fractal"):
        run = run_app(silo, inp, variant=variant, n_cores=N_CORES,
                      audit=True)
        results[variant] = run
        print(f"silo-{variant}")
        print(run.stats.summary())
        print()

    base = results["flat"].makespan
    print("speedup over silo-flat:")
    for variant in ("flat", "swarm", "fractal"):
        print(f"  silo-{variant:8s} {base / results[variant].makespan:6.2f}x")
    print("\nNote how silo-swarm needs SWARM_TS_PER_TXN "
          f"(= {silo.SWARM_TS_PER_TXN}) timestamps reserved per transaction "
          "— the launcher and the transaction code must agree on it, which "
          "is exactly the composability cost Fractal removes (paper Fig. 5).")


if __name__ == "__main__":
    main()
