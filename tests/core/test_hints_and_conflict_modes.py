"""Integration tests: spatial hints and conflict-detection modes at the
simulator level."""

import pytest

from repro import Simulator, SystemConfig


def build_contended(sim, n_groups=4, tasks_per_group=16, work=80):
    """Tasks in the same group RMW the same cell; hints name the group."""
    cells = [sim.cell(f"g{g}", 0) for g in range(n_groups)]

    def t(ctx, g):
        cells[g].add(ctx, 1)
        ctx.compute(work)

    for g in range(n_groups):
        for _ in range(tasks_per_group):
            sim.enqueue_root(t, g, hint=g)
    return cells


class TestHints:
    def test_hints_reduce_aborts_on_grouped_contention(self):
        def run(use_hints):
            sim = Simulator(SystemConfig.with_cores(
                16, use_hints=use_hints, conflict_mode="precise"))
            cells = build_contended(sim)
            stats = sim.run(max_cycles=10_000_000)
            assert all(c.peek() == 16 for c in cells)
            return stats

        with_hints = run(True)
        without = run(False)
        assert with_hints.tasks_aborted < without.tasks_aborted

    def test_hintless_tasks_still_run(self):
        sim = Simulator(SystemConfig.with_cores(16, use_hints=True))
        cell = sim.cell("c", 0)
        for _ in range(20):
            sim.enqueue_root(lambda ctx: cell.add(ctx, 1))
        sim.run()
        assert cell.peek() == 20


class TestBloomMode:
    def test_false_positives_on_large_footprints(self):
        """A task touching thousands of lines saturates its signature and
        draws spurious aborts against concurrent tasks."""
        sim = Simulator(SystemConfig.with_cores(16, conflict_mode="bloom"))
        big = sim.array("big", 3000 * 8)
        cell = sim.cell("c", 0)

        def whale(ctx):
            for i in range(3000):
                big.get(ctx, i * 8)

        def minnow(ctx, i):
            cell.add(ctx, 1)
            ctx.compute(50)

        sim.enqueue_root(whale)
        for i in range(40):
            sim.enqueue_root(minnow, i)
        stats = sim.run(max_cycles=20_000_000)
        assert cell.peek() == 40
        assert stats.false_positive_conflicts > 0

    def test_precise_mode_never_false_positives(self):
        sim = Simulator(SystemConfig.with_cores(16, conflict_mode="precise"))
        big = sim.array("big", 3000 * 8)

        def whale(ctx):
            for i in range(3000):
                big.get(ctx, i * 8)

        for _ in range(4):
            sim.enqueue_root(whale)
        stats = sim.run(max_cycles=20_000_000)
        assert stats.false_positive_conflicts == 0
        assert stats.tasks_aborted == 0  # read-only: no true conflicts

    def test_bloom_run_still_audits(self):
        sim = Simulator(SystemConfig.with_cores(8, conflict_mode="bloom"))
        cell = sim.cell("c", 0)
        for _ in range(30):
            sim.enqueue_root(lambda ctx: cell.add(ctx, 1))
        sim.run(max_cycles=10_000_000)
        sim.audit()
        assert cell.peek() == 30
