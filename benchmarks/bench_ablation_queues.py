"""Ablation: task-queue and commit-queue capacity (paper Table 2: 64 + 16
entries per core; Sec. 4.1 spills and stalls).

Shrinking the commit queue forces finish-stalls and pressure aborts;
shrinking the task queue forces coalescer/splitter spills. Both must show
up in the cycle breakdown, and capacity should buy performance back.
"""

from _common import core_counts, emit, once, run_once
from repro.apps import mis
from repro.bench.harness import run_app
from repro.bench.report import format_table
from repro.config import SystemConfig

CONFIGS = [
    ("tiny", dict(task_queue_per_core=12, commit_queue_per_core=4)),
    ("small", dict(task_queue_per_core=24, commit_queue_per_core=8)),
    ("paper", dict(task_queue_per_core=64, commit_queue_per_core=16)),
]


def sweep(n_cores):
    inp = mis.make_input(scale=7, edge_factor=4)
    rows = []
    results = {}
    for name, params in CONFIGS:
        cfg = SystemConfig.with_cores(n_cores, **params)
        run = run_app(mis, inp, variant="fractal", n_cores=n_cores,
                      config=cfg)
        results[name] = run
        f = run.stats.breakdown.fractions()
        rows.append([name, f"{run.makespan:,}",
                     f"{f['spill']:.1%}", f"{f['stall']:.1%}",
                     run.stats.tasks_spilled])
    emit(f"ablation_queues_{n_cores}c", format_table(
        ["config", "makespan", "spill", "stall", "tasks spilled"], rows))
    return results


def bench_ablation_queues(benchmark):
    n = max(core_counts(quick=True))
    results = once(benchmark, lambda: sweep(n))
    # constrained queues must spill more tasks than the paper config
    assert (results["tiny"].stats.tasks_spilled
            >= results["paper"].stats.tasks_spilled)


if __name__ == "__main__":
    sweep(max(core_counts()))
