"""Tests for the zooming microbenchmark (paper Sec. 6.3, Fig. 16)."""

import pytest

from repro.apps import zoomtree
from repro.bench.harness import run_app
from repro.config import SystemConfig


def run_tree(fanout, depth, max_depth, n_cores=8):
    inp = zoomtree.make_input(fanout=fanout, depth=depth)
    cfg = SystemConfig.with_cores(
        n_cores, vt_bits=zoomtree.vt_bits_for_depth(max_depth),
        conflict_mode="precise")
    run = run_app(zoomtree, inp, variant="fractal", n_cores=n_cores,
                  config=cfg, audit=True, max_cycles=80_000_000)
    zoomtree.check(run.handles, inp)
    return run


class TestCorrectness:
    def test_all_tasks_run_without_zooming(self):
        run = run_tree(fanout=3, depth=4, max_depth=4)
        assert run.stats.zoom_ins == 0

    def test_all_tasks_run_with_heavy_zooming(self):
        run = run_tree(fanout=2, depth=5, max_depth=2)
        assert run.stats.zoom_ins > 0
        assert run.stats.zoom_outs > 0

    def test_zoom_counts_balance(self):
        run = run_tree(fanout=3, depth=5, max_depth=3)
        # every zoom-in is eventually undone
        assert run.stats.zoom_ins == run.stats.zoom_outs + \
            run.handles["_sim"].zoom.depth
        assert run.handles["_sim"].zoom.depth == 0

    def test_depth_one_tree_is_trivial(self):
        run = run_tree(fanout=4, depth=1, max_depth=2)
        assert run.stats.tasks_committed == 1


class TestPaperShape:
    def test_more_levels_less_overhead(self):
        """Fig. 16a: raising the supported depth D reduces makespan."""
        d2 = run_tree(fanout=3, depth=5, max_depth=2, n_cores=1)
        d3 = run_tree(fanout=3, depth=5, max_depth=3, n_cores=1)
        d5 = run_tree(fanout=3, depth=5, max_depth=5, n_cores=1)
        assert d5.makespan <= d3.makespan <= d2.makespan
        assert d2.stats.zoom_ins > d3.stats.zoom_ins > 0

    def test_no_zoom_config_never_zooms(self):
        run = run_tree(fanout=4, depth=4, max_depth=8)
        assert run.stats.zoom_ins == 0 and run.stats.zoom_outs == 0

    def test_task_count(self):
        inp = zoomtree.make_input(fanout=3, depth=4)
        assert inp.total_tasks == 1 + 3 + 9 + 27
