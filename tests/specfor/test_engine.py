"""Unit tests for the standalone speculative_for engine and its policy."""

import pytest

from repro.errors import ConfigError
from repro.faults.resilience import ResiliencePolicy
from repro.specfor import (UNRESERVED, SpecForLivelock, SpecForPolicy,
                           sequential_for, speculative_for)
from repro.specfor.engine import STAGE_FULL, STAGE_HALVED, STAGE_SERIAL


class PureTable:
    """Plain-Python reservation cells (no ctx, no spec memory)."""

    def __init__(self, n):
        self.cells = [UNRESERVED] * n

    def write_min(self, loc, i):
        self.cells[loc] = min(self.cells[loc], i)

    def holds(self, loc, i):
        return self.cells[loc] == i

    def check_release(self, loc, i):
        if self.cells[loc] == i:
            self.cells[loc] = UNRESERVED


class CavityStep:
    """Refine-style step: iteration i claims all its cells or none."""

    def __init__(self, cavities, n_cells):
        self.cavities = cavities
        self.resv = PureTable(n_cells)
        self.owner = [-1] * n_cells
        self.success = [0] * len(cavities)
        self.release_calls = []

    def reserve(self, ctx, i):
        if any(self.owner[c] >= 0 for c in self.cavities[i]):
            return False
        for c in self.cavities[i]:
            self.resv.write_min(c, i)
        return True

    def commit(self, ctx, i):
        if not all(self.resv.holds(c, i) for c in self.cavities[i]):
            return False
        for c in self.cavities[i]:
            self.owner[c] = i
        self.success[i] = 1
        return True

    def release(self, ctx, i):
        self.release_calls.append(i)
        for c in self.cavities[i]:
            self.resv.check_release(c, i)


def greedy_reference(cavities, n_cells):
    owner = [-1] * n_cells
    success = [0] * len(cavities)
    for i, cav in enumerate(cavities):
        if all(owner[c] < 0 for c in cav):
            for c in cav:
                owner[c] = i
            success[i] = 1
    return success, owner


class TestPolicy:
    def test_max_round_size_is_pbbs_formula(self):
        pol = SpecForPolicy(granularity=8)
        assert pol.max_round_size(80) == 11
        assert pol.max_round_size(7) == 1  # never zero

    def test_stage_ladder_boundaries(self):
        pol = SpecForPolicy(throttle_after=4, serialize_after=8,
                            max_tries=64)
        assert pol.stage_for(0) == STAGE_FULL
        assert pol.stage_for(3) == STAGE_FULL
        assert pol.stage_for(4) == STAGE_HALVED
        assert pol.stage_for(7) == STAGE_HALVED
        assert pol.stage_for(8) == STAGE_SERIAL

    def test_size_shrinks_down_the_ladder(self):
        pol = SpecForPolicy(granularity=8)
        n = 160
        assert pol.size_for(STAGE_FULL, n) == 21
        assert pol.size_for(STAGE_HALVED, n) == 10
        assert pol.size_for(STAGE_SERIAL, n) == 1

    def test_ladder_order_is_validated(self):
        with pytest.raises(ConfigError):
            SpecForPolicy(throttle_after=9, serialize_after=8)
        with pytest.raises(ConfigError):
            SpecForPolicy(serialize_after=100, max_tries=10)
        with pytest.raises(ConfigError):
            SpecForPolicy(granularity=0)

    def test_from_resilience_maps_the_window(self):
        res = ResiliencePolicy.from_dict(
            {"livelock_window": 10, "max_attempts": 3})
        pol = SpecForPolicy.from_resilience(res, granularity=4)
        assert pol.granularity == 4
        assert pol.throttle_after == 5
        assert pol.serialize_after == 10
        assert pol.max_tries == 30

    def test_roundtrip_dict(self):
        pol = SpecForPolicy(granularity=2, throttle_after=1,
                            serialize_after=2, max_tries=3)
        assert SpecForPolicy(**pol.to_dict()) == pol


class TestSpeculativeFor:
    def test_empty_loop(self):
        out = speculative_for(CavityStep([], 1), 0)
        assert out.done == 0 and out.rounds == []

    def test_matches_sequential_reference(self):
        cavities = [(0, 1), (1, 2), (3,), (2, 3), (0, 4), (4, 5)]
        step = CavityStep(cavities, 6)
        out = speculative_for(step, len(cavities),
                              policy=SpecForPolicy(granularity=1))
        want_success, want_owner = greedy_reference(cavities, 6)
        assert step.success == want_success
        assert step.owner == want_owner
        assert out.done == len(cavities)
        assert out.commits == sum(want_success)
        assert out.commits + out.filtered == len(cavities)

    def test_contended_loser_is_carried_then_filtered(self):
        # both iterations want cell 0: i=0 wins round 0, i=1 is carried,
        # then filtered in round 1 (owner already set) with release called
        step = CavityStep([(0,), (0,)], 1)
        out = speculative_for(step, 2, policy=SpecForPolicy(granularity=1))
        assert step.success == [1, 0]
        assert out.reserve_failures == 1
        assert out.rounds[0].carried == (1,)
        assert out.rounds[1].batch == (1,)
        assert step.release_calls == [1]

    def test_round_batches_respect_granularity(self):
        cavities = [(i,) for i in range(20)]  # no conflicts
        step = CavityStep(cavities, 20)
        records = []
        out = speculative_for(step, 20,
                              policy=SpecForPolicy(granularity=8),
                              observer=records.append)
        assert records == out.rounds
        assert [r.size for r in out.rounds] == [3, 3, 3, 3, 3, 3, 2]
        assert all(r.stage == STAGE_FULL for r in out.rounds)

    def test_done_is_monotone_and_complete(self):
        cavities = [(i % 4, (i + 1) % 4) for i in range(12)]
        step = CavityStep(cavities, 4)
        out = speculative_for(step, 12,
                              policy=SpecForPolicy(granularity=2))
        dones = [r.done for r in out.rounds]
        assert dones == sorted(dones)
        assert dones[-1] == 12

    def test_livelock_raises_after_max_tries(self):
        class Stuck:
            def reserve(self, ctx, i):
                return True

            def commit(self, ctx, i):
                return False

        pol = SpecForPolicy(granularity=1, throttle_after=1,
                            serialize_after=2, max_tries=5)
        records = []
        with pytest.raises(SpecForLivelock):
            speculative_for(Stuck(), 3, policy=pol,
                            observer=records.append)
        assert len(records) == 5
        # the ladder was walked on the way down
        assert records[0].stage == STAGE_FULL
        assert records[1].stage == STAGE_HALVED
        assert records[-1].stage == STAGE_SERIAL
        assert records[-1].size == 1


class TestSequentialFor:
    def test_counts_commits_and_filters(self):
        cavities = [(0,), (0,), (1,)]
        step = CavityStep(cavities, 2)
        assert sequential_for(step, 3) == 2
        assert step.success == [1, 0, 1]

    def test_commit_failure_alone_is_a_contract_violation(self):
        class Broken:
            def reserve(self, ctx, i):
                return True

            def commit(self, ctx, i):
                return False

        with pytest.raises(SpecForLivelock):
            sequential_for(Broken(), 1)
