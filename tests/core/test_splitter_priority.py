"""Regression test: a splitter holding the earliest work must not starve
(the GVT would wedge behind its spilled tasks forever)."""

import pytest

from repro import Ordering, Simulator, SystemConfig


class TestSplitterPriority:
    def test_spilled_early_task_returns_under_constant_pressure(self):
        """Keep the task queue hot with later-timestamp work while the
        earliest-timestamp task sits in a spill buffer: the splitter must
        preempt the pending queue, or nothing ever commits."""
        sim = Simulator(SystemConfig.with_cores(
            1, task_queue_per_core=10, spill_batch=5,
            conflict_mode="precise"),
            root_ordering=Ordering.ORDERED_32)
        done = sim.cell("done", 0)

        def early(ctx):
            done.add(ctx, 1)

        def late(ctx, n):
            ctx.compute(50)
            if n:
                ctx.enqueue(late, n - 1, ts=ctx.timestamp + 1)

        # enough later tasks to keep the queue over the spill threshold
        for k in range(30):
            sim.enqueue_root(late, 3, ts=100 + k)
        # the earliest task arrives last and may be spilled
        sim.enqueue_root(early, ts=0)
        stats = sim.run(max_cycles=10_000_000)
        assert done.peek() == 1
        assert stats.tasks_committed == 31 + 30 * 3

    def test_empty_splitters_retired(self):
        """Splitters whose buffers were squashed away retire without
        occupying cores forever."""
        sim = Simulator(SystemConfig.with_cores(
            4, task_queue_per_core=8, spill_batch=4,
            conflict_mode="precise"))
        cell = sim.cell("c", 0)
        for _ in range(80):
            sim.enqueue_root(lambda ctx: cell.add(ctx, 1))
        stats = sim.run(max_cycles=20_000_000)
        assert cell.peek() == 80
