"""A minimal directed/undirected graph container.

Kept deliberately independent of the simulator: applications copy the
adjacency they need into speculative memory at build time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import AppError


class Graph:
    """Adjacency-list graph with optional edge weights/capacities."""

    def __init__(self, n: int, directed: bool = False):
        if n < 0:
            raise AppError("node count must be >= 0")
        self.n = n
        self.directed = directed
        self.adj: List[List[int]] = [[] for _ in range(n)]
        self.weights: Dict[Tuple[int, int], float] = {}

    def add_edge(self, u: int, v: int, weight: Optional[float] = None) -> None:
        """Add an edge (both directions unless directed), optionally weighted."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise AppError(f"edge ({u},{v}) out of range")
        self.adj[u].append(v)
        if not self.directed:
            self.adj[v].append(u)
        if weight is not None:
            self.weights[(u, v)] = weight
            if not self.directed:
                self.weights[(v, u)] = weight

    def has_edge(self, u: int, v: int) -> bool:
        """True when v is adjacent to u."""
        return v in self.adj[u]

    def weight(self, u: int, v: int, default: float = 1.0) -> float:
        """Edge weight/capacity, or ``default`` when unweighted."""
        return self.weights.get((u, v), default)

    def neighbors(self, u: int) -> List[int]:
        """Adjacency list of u (shared reference; do not mutate)."""
        return self.adj[u]

    def degree(self, u: int) -> int:
        """Number of stored edges out of u."""
        return len(self.adj[u])

    @property
    def m(self) -> int:
        """Number of stored directed edges (2x logical edges if undirected)."""
        return sum(len(a) for a in self.adj)

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Each logical edge once (u <= v for undirected graphs)."""
        for u in range(self.n):
            for v in self.adj[u]:
                if self.directed or u <= v:
                    yield (u, v)

    def dedup(self) -> "Graph":
        """Remove duplicate edges and self-loops (in place); returns self."""
        for u in range(self.n):
            seen = set()
            out = []
            for v in self.adj[u]:
                if v != u and v not in seen:
                    seen.add(v)
                    out.append(v)
            self.adj[u] = out
        return self

    def to_networkx(self):
        """Export for oracle checks (networkx is a test-time dependency)."""
        import networkx as nx

        g = nx.DiGraph() if self.directed else nx.Graph()
        g.add_nodes_from(range(self.n))
        for u, v in self.edges():
            g.add_edge(u, v, weight=self.weight(u, v), capacity=self.weight(u, v))
        return g

    def __repr__(self) -> str:
        kind = "digraph" if self.directed else "graph"
        return f"Graph({kind}, n={self.n}, m={self.m})"
