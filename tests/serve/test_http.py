"""End-to-end HTTP tests: server thread + client over a real socket."""

import http.client
import json

import pytest

from repro.serve import ServeConfig, TenantQuota, start_in_thread
from repro.serve.client import (JobFailed, RateLimited, ServeAPIError,
                                ServeClient)

FAKEAPP = "tests.farm._fakeapp"


def fake_doc(n_tasks=4, **extra):
    return {"app": FAKEAPP, "variant": "fractal", "n_cores": 2,
            "input": {"n_tasks": n_tasks, **extra}}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cfg = ServeConfig(
        host="127.0.0.1", port=0, workers=1, warmup=False,
        cache_dir=str(tmp_path_factory.mktemp("serve") / "cache"),
        tenants={"k-tight": TenantQuota("tight", queue_limit=1,
                                        rate=0.001, burst=1)})
    handle = start_in_thread(cfg)
    yield handle
    handle.stop(drain=True, timeout=60)


@pytest.fixture()
def client(server):
    with ServeClient(server.url, timeout=30.0) as c:
        yield c


class TestEndpoints:
    def test_healthz(self, client):
        doc = client.healthz()
        assert doc["ok"] is True
        assert doc["state"] == "serving"

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeAPIError) as ei:
            client._checked("GET", "/nope")
        assert ei.value.status == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServeAPIError) as ei:
            client.status("no-such-digest")
        assert ei.value.status == 404

    def test_malformed_json_body_400(self, server):
        conn = http.client.HTTPConnection(server.server.config.host,
                                          server.server.port, timeout=10)
        try:
            conn.request("POST", "/v1/jobs", body=b"{nope",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()

    def test_spec_field_errors_in_400_body(self, client):
        with pytest.raises(ServeAPIError) as ei:
            client.submit({"app": "nope", "n_cores": "x"})
        assert ei.value.status == 400
        fields = {e["field"] for e in ei.value.errors}
        assert fields == {"app", "n_cores"}

    def test_method_not_allowed(self, client):
        with pytest.raises(ServeAPIError) as ei:
            client._checked("PUT", "/v1/jobs/abc")
        assert ei.value.status == 405

    def test_result_conflict_while_queued(self, client, server):
        # unstarted managers are covered in test_manager; here the job
        # may legitimately finish fast, so just exercise the poll loop
        doc = client.submit(fake_doc(4))
        res = client.result(doc["id"], timeout=90)
        assert res["state"] == "done"


class TestSubmitFlow:
    def test_submit_result_roundtrip(self, client):
        doc = client.submit(fake_doc(6))
        assert doc["outcome"] in ("queued", "coalesced", "warm")
        assert len(doc["id"]) == 64            # sha256 content address
        res = client.result(doc["id"], timeout=90)
        assert res["stats"]["tasks_committed"] == 6
        status = client.status(doc["id"])
        assert status["state"] == "done"
        assert status["has_result"] is True

    def test_resubmit_answers_warm_from_table(self, client):
        spec = fake_doc(8)
        first = client.submit(spec)
        client.result(first["id"], timeout=90)
        second = client.submit(spec)
        assert second["outcome"] == "warm"
        assert second["state"] == "done"
        assert second["id"] == first["id"]

    def test_jobs_listing(self, client):
        doc = client.submit(fake_doc(6))
        jobs = client.jobs()
        assert doc["id"] in {j["id"] for j in jobs}

    def test_failed_job_result_is_500(self, client, tmp_path):
        spec = fake_doc(4, fail_times=99, scratch=str(tmp_path / "s"))
        doc = client.submit(spec)
        with pytest.raises(JobFailed) as ei:
            client.result(doc["id"], timeout=90)
        assert "transient fake-app failure" in ei.value.doc["error"]

    def test_metrics_endpoint(self, client):
        doc = client.metrics()
        assert doc["schema"] == "repro.serve-metrics/1"
        names = {r["name"] for r in doc["metrics"]["counters"]}
        assert "serve.submissions" in names
        assert "anonymous" in doc["serve"]["tenants"]


class TestSse:
    def test_stream_replays_and_terminates(self, client):
        doc = client.submit(fake_doc(10))
        client.result(doc["id"], timeout=90)   # finished: pure replay
        events = list(client.events(doc["id"]))
        kinds = [k for k, _ in events]
        assert kinds[0] == "job_queued"
        assert "job_state" in kinds
        assert events[-1][1]["final"] is True

    def test_live_stream_sees_completion(self, client):
        doc = client.submit(fake_doc(12))
        events = list(client.events(doc["id"], timeout=90))
        assert events[-1][1]["final"] is True
        assert events[-1][1]["state"] in ("done", "failed")

    def test_events_unknown_job_404(self, client):
        with pytest.raises(ServeAPIError) as ei:
            list(client.events("no-such-digest"))
        assert ei.value.status == 404


class TestAdmissionOverHttp:
    def test_rate_limit_429_with_retry_after(self, server):
        with ServeClient(server.url, api_key="k-tight",
                         timeout=30.0) as c:
            c.submit(fake_doc(20))             # burst of 1
            with pytest.raises(RateLimited) as ei:
                c.submit(fake_doc(21))
            assert ei.value.status == 429
            assert ei.value.retry_after > 0

    def test_unknown_api_key_401(self, server):
        with ServeClient(server.url, api_key="k-wrong",
                         timeout=30.0) as c:
            with pytest.raises(ServeAPIError) as ei:
                c.submit(fake_doc())
            assert ei.value.status == 401
