"""Cache-hierarchy latency model (paper Table 2).

A task-granular stand-in for the paper's L1/L2/L3/DRAM hierarchy:

- repeated touches of a line already in the task's footprint hit the L1;
- a task's first touch of a line hits the local L2 slice when the line's
  static-NUCA home tile is the task's tile, else the home L3 slice plus the
  mesh round trip;
- a configurable fraction of first touches escalates to main memory.

This preserves exactly what the evaluation depends on: spatial hints make
accesses cheaper by running tasks at their data's home tile, and bigger
read/write sets make tasks proportionally longer.
"""

from __future__ import annotations

import random

from ..config import LatencyModel
from ..mem.address import AddressSpace
from .noc import MeshNoC


class CacheModel:
    """Latency oracle for speculative accesses."""

    def __init__(self, space: AddressSpace, noc: MeshNoC,
                 latency: LatencyModel, seed: int = 0):
        self.space = space
        self.noc = noc
        self.lat = latency
        self._rng = random.Random(seed ^ 0xCAC4E)
        # per-access constants, resolved once (this is the hottest call in
        # the access path; chasing latency-model attributes per call costs
        # more than the arithmetic)
        self._line_words = space.line_words
        self._n_tiles = space.n_tiles
        self._l1_hit = latency.l1_hit
        self._l2_hit = latency.l2_hit
        self._l3_hit = latency.l3_hit
        self._mem_latency = latency.mem_latency
        self._mem_miss_rate = latency.mem_miss_rate
        # counters for stats
        self.l1_hits = 0
        self.l2_hits = 0
        self.l3_hits = 0
        self.mem_misses = 0

    def access_latency(self, owner, tile: int, addr: int) -> int:
        """Cycles for ``owner`` (running on ``tile``) to touch ``addr``.

        ``owner`` carries its touched-line footprint (``read_lines`` /
        ``write_lines``), which stands in for its L1 residency.
        """
        line = addr // self._line_words
        if line in owner.read_lines or line in owner.write_lines:
            self.l1_hits += 1
            return self._l1_hit
        if self._mem_miss_rate > 0 and self._rng.random() < self._mem_miss_rate:
            self.mem_misses += 1
            return self._mem_latency
        home = line % self._n_tiles
        if home == tile:
            self.l2_hits += 1
            return self._l2_hit
        self.l3_hits += 1
        return self._l3_hit + self.noc.round_trip(tile, home)

    def snapshot(self) -> dict:
        """Hit/miss counters for run statistics."""
        return {
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "l3_hits": self.l3_hits,
            "mem_misses": self.mem_misses,
        }
