"""ServeClient 429 handling: opt-in Retry-After retry loop."""

import pytest

from repro.serve.client import (RETRY_SLEEP_CAP_S, RateLimited, ServeClient,
                                retry_delay_s)


class FakeWire:
    """Scripted (status, headers, doc) responses for client._request."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.calls = []

    def __call__(self, method, path, body=None):
        self.calls.append((method, path))
        return self.responses.pop(0)


def rate_limited(after):
    return (429, {"retry-after": str(after)},
            {"error": "slow down", "retry_after": after, "reason": "rate"})


OK = (200, {}, {"id": "d" * 64, "outcome": "queued"})


def make_client(responses, retries=0, seed=0):
    sleeps = []
    client = ServeClient("http://127.0.0.1:1", retries=retries,
                         retry_seed=seed, sleep=sleeps.append)
    wire = FakeWire(responses)
    client._request = wire
    return client, wire, sleeps


class TestRetryLoop:
    def test_default_still_raises_immediately(self):
        client, wire, sleeps = make_client([rate_limited(2.5)])
        with pytest.raises(RateLimited) as exc:
            client.submit({"app": "mis"})
        assert exc.value.retry_after == 2.5
        assert sleeps == []                       # never slept
        assert len(wire.calls) == 1

    def test_retries_absorb_429_and_honor_retry_after(self):
        client, wire, sleeps = make_client(
            [rate_limited(0.5), rate_limited(1.5), OK], retries=3)
        doc = client.submit({"app": "mis"})
        assert doc["outcome"] == "queued"
        assert len(wire.calls) == 3
        assert client.n_rate_retries == 2
        # every sleep is at least the server's Retry-After hint
        assert sleeps[0] >= 0.5 and sleeps[1] >= 1.5

    def test_retry_budget_exhausted_reraises(self):
        client, wire, sleeps = make_client(
            [rate_limited(0.1)] * 3, retries=2)
        with pytest.raises(RateLimited):
            client.submit({"app": "mis"})
        assert len(wire.calls) == 3               # 1 try + 2 retries
        assert len(sleeps) == 2

    def test_non_429_errors_never_retry(self):
        client, wire, sleeps = make_client(
            [(400, {}, {"error": "bad spec"})], retries=5)
        from repro.serve.client import ServeAPIError
        with pytest.raises(ServeAPIError):
            client.submit({"app": "nope"})
        assert len(wire.calls) == 1 and sleeps == []

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ServeClient("http://127.0.0.1:1", retries=-1)


class TestRetryDelay:
    def test_floor_is_retry_after_hint(self):
        assert retry_delay_s(1, 5.0, seed=0) >= 5.0

    def test_backoff_curve_grows_when_hint_is_small(self):
        small_hint = [retry_delay_s(a, 0.01, seed=0) for a in (1, 2, 3, 4)]
        assert small_hint == sorted(small_hint)
        assert small_hint[-1] > small_hint[0]

    def test_capped(self):
        assert retry_delay_s(30, 10_000.0, seed=0) <= RETRY_SLEEP_CAP_S

    def test_jitter_is_seeded_and_deterministic(self):
        a = retry_delay_s(2, 1.0, seed=7)
        b = retry_delay_s(2, 1.0, seed=7)
        c = retry_delay_s(2, 1.0, seed=8)
        assert a == b                     # same seed -> same delay
        assert a != c                     # different seed -> jitter moves
        # jitter is bounded: within +25% of the un-jittered base
        assert 1.0 <= a <= 1.25 * max(1.0, 0.5)
