"""System configuration (paper Table 2).

:class:`SystemConfig` captures every architectural parameter the simulator
uses. The defaults reproduce the paper's 256-core, 64-tile chip; the
``small()``/``scaled()`` constructors produce the smaller square-mesh systems
used for scaling curves (the paper simulates K x K tile meshes for K <= 8,
keeping per-core queue and cache capacities constant).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from .errors import ConfigError


@dataclass(frozen=True)
class LatencyModel:
    """Memory/NoC latency parameters, in cycles (paper Table 2).

    The simulator charges each speculative access a latency picked from this
    model by :class:`repro.arch.cache.CacheModel`: repeated touches of a line
    a task already holds cost ``l1_hit``; the first touch costs ``l2_hit``
    when the line's home tile is the accessing tile, otherwise ``l3_hit``
    plus the mesh hop latency to the home tile; a configurable fraction of
    first touches (``mem_miss_rate``) escalates to main memory.
    """

    l1_hit: int = 2
    l2_hit: int = 7
    l3_hit: int = 9
    mem_latency: int = 120
    hop_straight: int = 1
    hop_turn: int = 2
    mem_miss_rate: float = 0.03


@dataclass(frozen=True)
class SystemConfig:
    """Full configuration of a simulated Fractal system (paper Table 2)."""

    # --- topology -------------------------------------------------------
    mesh_dim: int = 8                 # K x K tile mesh
    cores_per_tile: int = 4

    # --- task/commit queues --------------------------------------------
    task_queue_per_core: int = 64     # 16384 total at 256 cores
    commit_queue_per_core: int = 16   # 4096 total at 256 cores

    # --- fractal virtual time ------------------------------------------
    vt_bits: int = 128                # fractal VT bit budget
    tiebreaker_bits: int = 32
    enable_zooming: bool = True
    # Paper Sec. 6.3 future work: flatten *flattenable* (decomposition-
    # only) subdomains deeper than the threshold into their parent domain,
    # avoiding zooming and recovering parallelism for over-nested code.
    flatten_nesting: bool = False
    flatten_depth_threshold: int = 2

    # --- instruction overheads (cycles) ---------------------------------
    enqueue_cost: int = 5
    dequeue_cost: int = 5
    finish_cost: int = 5
    create_subdomain_cost: int = 2

    # --- conflict detection ---------------------------------------------
    conflict_mode: str = "bloom"      # "bloom" | "precise"
    bloom_bits: int = 2048
    bloom_ways: int = 8
    conflict_check_cost: int = 5      # per tile check
    commit_queue_compare_cost: int = 1

    # --- commits / spills ------------------------------------------------
    commit_interval: int = 200        # GVT arbiter period
    spill_threshold: float = 0.85     # coalescers fire at 85% task-queue fill
    spill_batch: int = 15             # tasks spilled per coalescer
    coalescer_cost_per_task: int = 10
    splitter_cost_per_task: int = 10

    # --- scheduling -------------------------------------------------------
    use_hints: bool = True            # spatial hints + load balancing
    load_balance_threshold: int = 8   # steal when longer by this many tasks

    # --- memory/NoC -------------------------------------------------------
    line_bytes: int = 64
    latency: LatencyModel = field(default_factory=LatencyModel)

    # --- misc --------------------------------------------------------------
    seed: int = 0                     # seeds Bloom hashing & any stochastic model
    abort_penalty: int = 20           # rollback delay per aborted task
    mispeculation_extra: int = 0      # extra cycles wasted per aborted run

    def __post_init__(self) -> None:
        if self.mesh_dim < 1:
            raise ConfigError(f"mesh_dim must be >= 1, got {self.mesh_dim}")
        if self.cores_per_tile < 1:
            raise ConfigError("cores_per_tile must be >= 1")
        if self.vt_bits < 32:
            raise ConfigError("vt_bits must be at least one domain VT (32)")
        if self.tiebreaker_bits < 4:
            raise ConfigError("tiebreaker_bits must be >= 4")
        if self.conflict_mode not in ("bloom", "precise"):
            raise ConfigError(f"unknown conflict_mode {self.conflict_mode!r}")
        if not (0.0 < self.spill_threshold <= 1.0):
            raise ConfigError("spill_threshold must be in (0, 1]")
        if self.bloom_bits & (self.bloom_bits - 1):
            raise ConfigError("bloom_bits must be a power of two")

    # --- derived quantities ----------------------------------------------
    @property
    def n_tiles(self) -> int:
        """Number of tiles (mesh_dim squared)."""
        return self.mesh_dim * self.mesh_dim

    @property
    def n_cores(self) -> int:
        """Total cores on the chip."""
        return self.n_tiles * self.cores_per_tile

    @property
    def task_queue_per_tile(self) -> int:
        """Task-queue entries per tile."""
        return self.task_queue_per_core * self.cores_per_tile

    @property
    def commit_queue_per_tile(self) -> int:
        """Commit-queue entries per tile."""
        return self.commit_queue_per_core * self.cores_per_tile

    @property
    def total_task_queue(self) -> int:
        """Chip-wide task-queue capacity (the speculation window)."""
        return self.task_queue_per_tile * self.n_tiles

    @property
    def total_commit_queue(self) -> int:
        """Chip-wide commit-queue capacity."""
        return self.commit_queue_per_tile * self.n_tiles

    # --- constructors -------------------------------------------------------
    @classmethod
    def with_cores(cls, n_cores: int, **overrides) -> "SystemConfig":
        """Config for an ``n_cores``-core system with square tile mesh.

        Mirrors the paper's methodology: per-core queue/cache capacities are
        constant across system sizes, so bigger systems have bigger total
        queues (which sometimes causes superlinear speedups; see paper §5).
        """
        if n_cores < 1:
            raise ConfigError("n_cores must be >= 1")
        preferred = int(overrides.pop("cores_per_tile", 4))
        # Find a K x K mesh with c cores/tile such that c * K^2 == n_cores,
        # preferring c closest to the paper's 4 cores/tile.
        candidates = []
        for mesh in range(int(math.isqrt(n_cores)), 0, -1):
            tiles = mesh * mesh
            if n_cores % tiles == 0:
                candidates.append((abs(n_cores // tiles - preferred), mesh))
        if not candidates:
            raise ConfigError(f"cannot tile {n_cores} cores into a square mesh")
        _, mesh = min(candidates)
        return cls(mesh_dim=mesh, cores_per_tile=n_cores // (mesh * mesh),
                   **overrides)

    @classmethod
    def paper_256core(cls, **overrides) -> "SystemConfig":
        """The paper's full 256-core, 64-tile configuration (Table 2)."""
        return cls(mesh_dim=8, cores_per_tile=4, **overrides)

    def replace(self, **changes) -> "SystemConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """Human-readable, Table 2-style description."""
        lines = [
            f"Cores      {self.n_cores} cores in {self.n_tiles} tiles "
            f"({self.cores_per_tile} cores/tile)",
            f"Queues     {self.task_queue_per_core} task queue entries/core "
            f"({self.total_task_queue} total), "
            f"{self.commit_queue_per_core} commit queue entries/core "
            f"({self.total_commit_queue} total), {self.vt_bits}-bit fractal VTs",
            f"Conflicts  {self.conflict_mode}"
            + (f", {self.bloom_bits // 1024} Kbit {self.bloom_ways}-way Bloom "
               f"filters, H3 hash functions" if self.conflict_mode == "bloom"
               else ""),
            f"Commits    tiles send updates to GVT arbiter every "
            f"{self.commit_interval} cycles",
            f"Spills     coalescers fire when a task queue is "
            f"{self.spill_threshold:.0%} full; spill up to {self.spill_batch} tasks",
            f"Scheduler  spatial hints {'with load balancing' if self.use_hints else 'OFF'}",
            f"Fractal    {self.enqueue_cost} cycles/enqueue+dequeue+finish, "
            f"{self.create_subdomain_cost} cycles/create_subdomain",
            f"NoC        {self.mesh_dim}x{self.mesh_dim} mesh, "
            f"{self.latency.hop_straight} cycle/hop straight, "
            f"{self.latency.hop_turn} on turns",
            f"Memory     L1 {self.latency.l1_hit}c / L2 {self.latency.l2_hit}c / "
            f"L3 {self.latency.l3_hit}c / mem {self.latency.mem_latency}c, "
            f"{self.line_bytes} B lines",
        ]
        return "\n".join(lines)


#: Core counts used for the paper's scaling curves (1c ... 256c).
PAPER_CORE_COUNTS = (1, 4, 16, 64, 256)

#: Smaller sweep used by default in this reproduction's quick benches.
QUICK_CORE_COUNTS = (1, 4, 16, 64)
