"""Unit tests for ResiliencePolicy, backoff, and the livelock detector."""

import pytest

from repro.errors import ConfigError
from repro.faults import LivelockDetector, ResiliencePolicy, backoff_delay
from repro.faults.resilience import NORMAL, SAFE, THROTTLED


class TestPolicy:
    def test_round_trip(self):
        policy = ResiliencePolicy(max_attempts=3, backoff_base=10,
                                  max_cycles=1000)
        assert ResiliencePolicy.from_dict(policy.to_dict()) == policy

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": -1},
        {"backoff_factor": 0.5},
        {"throttle_threshold": 1.5},
        {"exit_threshold": 0.9, "throttle_threshold": 0.5},
        {"queue_fail_factor": 0.5},
        {"max_cycles": -1},
    ])
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            ResiliencePolicy(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            ResiliencePolicy.from_dict({"max_atempts": 3})


class TestBackoff:
    def test_exponential_curve(self):
        policy = ResiliencePolicy(backoff_base=10, backoff_factor=2.0,
                                  backoff_cap=100)
        assert [backoff_delay(policy, n) for n in range(1, 6)] == \
            [10, 20, 40, 80, 100]

    def test_disabled_base_gives_zero(self):
        policy = ResiliencePolicy(backoff_base=0)
        assert backoff_delay(policy, 5) == 0

    def test_zeroth_retry_gives_zero(self):
        assert backoff_delay(ResiliencePolicy(), 0) == 0


def make_detector(**overrides):
    overrides.setdefault("livelock_window", 4)
    overrides.setdefault("throttle_threshold", 0.6)
    overrides.setdefault("safe_mode_threshold", 0.9)
    overrides.setdefault("safe_mode_commits", 3)
    overrides.setdefault("exit_threshold", 0.3)
    return LivelockDetector(ResiliencePolicy(**overrides))


def feed(det, deltas):
    """Feed (aborts, commits) per-tick deltas; return transitions seen."""
    aborts = commits = 0
    out = []
    for da, dc in deltas:
        aborts += da
        commits += dc
        out.append(det.note_tick(aborts, commits))
    return out


class TestLivelockDetector:
    def test_quiet_run_stays_normal(self):
        det = make_detector()
        assert feed(det, [(0, 5)] * 10) == [None] * 10
        assert det.state is NORMAL

    def test_no_judgement_before_window_fills(self):
        det = make_detector()
        assert feed(det, [(9, 1)] * 3) == [None] * 3
        assert det.state is NORMAL

    def test_throttle_then_release(self):
        det = make_detector()
        transitions = feed(det, [(7, 3)] * 4)     # 70% aborts
        assert transitions[-1] == "throttle"
        assert det.state is THROTTLED
        transitions = feed(det, [(0, 10)] * 4)    # rate collapses
        assert "release" in transitions
        assert det.state is NORMAL

    def test_safe_mode_entry_and_exit(self):
        det = make_detector()
        transitions = feed(det, [(19, 1)] * 4)    # 95% aborts
        assert transitions[-1] == "safe_enter"
        assert det.state is SAFE
        # serialized: commits flow, aborts stop; needs >= 3 safe commits
        # and the windowed rate back under exit_threshold
        transitions = feed(det, [(0, 2)] * 6)
        assert "safe_exit" in transitions
        assert det.state is NORMAL
        assert det.safe_commits >= 3

    def test_safe_mode_holds_until_commits_accumulate(self):
        det = make_detector(safe_mode_commits=50)
        feed(det, [(19, 1)] * 4)
        assert det.state is SAFE
        assert feed(det, [(0, 2)] * 6) == [None] * 6  # only 12 commits
        assert det.state is SAFE

    def test_force_safe(self):
        det = make_detector()
        assert det.force_safe() is True
        assert det.state is SAFE
        assert det.force_safe() is False  # already there

    def test_window_disabled(self):
        det = make_detector(livelock_window=0)
        assert feed(det, [(100, 0)] * 5) == [None] * 5

    def test_abort_rate_and_window_totals(self):
        det = make_detector()
        feed(det, [(3, 1)] * 4)
        assert det.window_totals == (12, 4)
        assert det.abort_rate == pytest.approx(0.75)
