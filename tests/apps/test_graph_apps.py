"""Tests for color, msf, and maxflow (paper Secs. 2.1, 6.1, 6.2)."""

import pytest

from repro.apps import color, maxflow, msf


class TestColor:
    @pytest.mark.parametrize("variant", ["flat", "fractal", "swarm"])
    def test_matches_greedy_oracle(self, run_checked, variant):
        inp = color.make_input(scale=5, edge_factor=3)
        run = run_checked(color, inp, variant)
        assert run.stats.tasks_committed >= inp.n

    @pytest.mark.parametrize("variant", ["flat", "fractal", "swarm"])
    def test_serial_matches(self, run_serial_checked, variant):
        inp = color.make_input(scale=4, edge_factor=3)
        run_serial_checked(color, inp, variant)

    def test_deterministic_across_core_counts(self, run_checked):
        inp = color.make_input(scale=4, edge_factor=3)
        a = run_checked(color, inp, "fractal", n_cores=4)
        b = run_checked(color, inp, "fractal", n_cores=16)
        assert (a.handles["color"].snapshot()
                == b.handles["color"].snapshot())

    def test_star_graph_two_colors(self, run_checked):
        from repro.graphs import Graph
        g = Graph(8)
        for v in range(1, 8):
            g.add_edge(0, v)
        run = run_checked(color, g, "fractal")
        assert color.check(run.handles, g) == 2


class TestMsf:
    @pytest.mark.parametrize("variant", ["flat", "fractal", "swarm"])
    def test_matches_networkx(self, run_checked, variant):
        inp = msf.make_input(scale=5, edge_factor=3)
        run_checked(msf, inp, variant)

    @pytest.mark.parametrize("variant", ["flat", "fractal", "swarm"])
    def test_serial_matches(self, run_serial_checked, variant):
        inp = msf.make_input(scale=4, edge_factor=3)
        run_serial_checked(msf, inp, variant)

    def test_disconnected_forest(self, run_checked):
        from repro.graphs import Graph
        g = Graph(6)
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(1, 2, weight=2.0)
        g.add_edge(3, 4, weight=3.0)
        run = run_checked(msf, g, "fractal")
        assert msf.check(run.handles, g) == 6.0

    def test_parallel_edges_pick_cheapest(self, run_checked):
        from repro.graphs import Graph
        g = Graph(2)
        g.add_edge(0, 1, weight=5.0)
        run = run_checked(msf, g, "flat")
        assert msf.check(run.handles, g) == 5.0


class TestMaxflow:
    @pytest.mark.parametrize("variant", ["flat", "fractal"])
    def test_matches_networkx(self, run_checked, variant):
        inp = maxflow.make_input(b=3, layers=3)
        run_checked(maxflow, inp, variant)

    @pytest.mark.parametrize("variant", ["flat", "fractal"])
    def test_serial_matches(self, run_serial_checked, variant):
        inp = maxflow.make_input(b=2, layers=3)
        run_serial_checked(maxflow, inp, variant)

    def test_without_global_relabel_still_correct(self):
        from repro.bench.harness import run_app
        inp = maxflow.make_input(b=2, layers=3)
        run = run_app(maxflow, inp, variant="flat", n_cores=4,
                      global_relabel=False, audit=True,
                      max_cycles=20_000_000)
        maxflow.check(run.handles, inp)

    def test_different_seeds_different_flows(self):
        a = maxflow.make_input(b=3, layers=3, seed=1)
        b = maxflow.make_input(b=3, layers=3, seed=2)
        assert (maxflow.reference_maxflow(a)
                != maxflow.reference_maxflow(b))

    def test_global_relabel_actually_fires(self, run_checked):
        inp = maxflow.make_input(b=4, layers=4)
        run = run_checked(maxflow, inp, "fractal", n_cores=16)
        sim = run.handles["_sim"]
        labels = {t.label for t in sim.commit_log}
        assert "global_relabel" in labels
        assert "bfs" in labels
