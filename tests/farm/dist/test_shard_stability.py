"""Shard-lease stability properties (hypothesis).

Two invariants the dist design leans on:

1. **Subset stability** — a job's fragment is a pure function of its own
   content digest (blake2b shard), so submitting any subset of a sweep
   assigns every surviving job to the same fragment id it had in the
   full sweep. Caches, retries, and partial resubmissions can never
   reshuffle work.
2. **Never-split leasing** — across any interleaving of registrations,
   acquires, clock advances, reaps, and heartbeats, a fragment is
   covered by at most one live lease: re-sharding after agent loss moves
   whole fragments, it never splits one across two live leases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.farm import stable_digest
from repro.farm.dist.coordinator import (LEASED, Coordinator,
                                         CoordinatorConfig)
from repro.farm.shard import shard_index

FAKEAPP = "tests.farm._fakeapp"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_coord(fragments, clock):
    cfg = CoordinatorConfig(lease_ttl_s=10.0, heartbeat_interval_s=2.0,
                            fragments=fragments, cache_dir=None)
    return Coordinator(cfg, clock=clock)


def docs_for(seeds):
    return [{"app": FAKEAPP, "n_cores": 1,
             "input": {"n_tasks": 2, "work_cycles": 10 + s}}
            for s in seeds]


# -- property 1: subset stability --------------------------------------
@settings(max_examples=30, deadline=None)
@given(keys=st.lists(st.text(min_size=1, max_size=20), min_size=1,
                     max_size=30, unique=True),
       n_shards=st.integers(min_value=1, max_value=16),
       subset_mask=st.lists(st.booleans(), min_size=30, max_size=30))
def test_shard_index_is_subset_stable(keys, n_shards, subset_mask):
    digests = [stable_digest(k) for k in keys]
    full = {d: shard_index(d, n_shards) for d in digests}
    subset = [d for d, keep in zip(digests, subset_mask) if keep]
    for d in subset:
        assert shard_index(d, n_shards) == full[d]
        assert 0 <= full[d] < n_shards


@settings(max_examples=10, deadline=None)
@given(seeds=st.lists(st.integers(min_value=0, max_value=200),
                      min_size=2, max_size=10, unique=True),
       n_fragments=st.integers(min_value=1, max_value=5),
       drop=st.integers(min_value=0, max_value=9))
def test_sweep_subset_keeps_fragment_assignment(seeds, n_fragments, drop):
    """Removing a job from a sweep never moves the others' fragments."""
    clock = FakeClock()
    coord = make_coord(n_fragments, clock)
    full_id = coord.submit_sweep({"jobs": docs_for(seeds),
                                  "fragments": n_fragments})["id"]
    full = coord.sweep(full_id)
    frag_of = {full.specs[i].digest(): f.id
               for f in full.fragments.values() for i in f.indices}

    subset_seeds = [s for i, s in enumerate(seeds) if i != drop % len(seeds)]
    if not subset_seeds:
        return
    sub_id = coord.submit_sweep({"jobs": docs_for(subset_seeds),
                                 "fragments": n_fragments})["id"]
    sub = coord.sweep(sub_id)
    # a smaller sweep clamps n_fragments the same way only when the job
    # count still covers it; compare only when the modulus is unchanged
    if min(n_fragments, len(seeds)) != min(n_fragments, len(subset_seeds)):
        return
    for f in sub.fragments.values():
        for i in f.indices:
            assert frag_of[sub.specs[i].digest()] == f.id


# -- property 2: never-split leasing -----------------------------------
def _assert_never_split(coord):
    live_by_fragment = {}
    for lease in coord._leases.values():
        key = (lease.sweep, lease.fragment)
        assert key not in live_by_fragment, \
            f"fragment {key} held by two live leases"
        live_by_fragment[key] = lease
    for sweep in coord._sweeps.values():
        for frag in sweep.fragments.values():
            if frag.state == LEASED:
                assert frag.lease is not None
                assert coord._leases.get(frag.lease.id) is frag.lease
            else:
                assert frag.lease is None


op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("acquire"),
                  st.integers(min_value=0, max_value=3),
                  st.integers(min_value=1, max_value=4)),
        st.tuples(st.just("advance"),
                  st.sampled_from([1.0, 5.0, 11.0, 21.0]), st.just(0)),
        st.tuples(st.just("heartbeat"),
                  st.integers(min_value=0, max_value=3), st.just(0)),
        st.tuples(st.just("reap"), st.just(0), st.just(0)),
    ),
    min_size=1, max_size=25)


@settings(max_examples=20, deadline=None)
@given(ops=op_strategy, n_fragments=st.integers(min_value=1, max_value=4))
def test_fragment_never_held_by_two_live_leases(ops, n_fragments):
    clock = FakeClock()
    coord = make_coord(n_fragments, clock)
    coord.submit_sweep({"jobs": docs_for(range(6)),
                        "fragments": n_fragments})
    agents = [coord.register_agent({"agent": f"w{i}"})["agent"]
              for i in range(4)]
    held = {a: [] for a in agents}
    for kind, a, k in ops:
        agent = agents[int(a) % len(agents)] if kind != "advance" else None
        if kind == "acquire":
            try:
                got = coord.acquire(agent, {"max_fragments": k})
            except Exception:
                pass                         # agent reaped: acceptable
            else:
                held[agent].extend(l["lease"] for l in got["leases"])
        elif kind == "advance":
            clock.now += a                   # a is the seconds value
        elif kind == "heartbeat":
            try:
                coord.heartbeat(agent, {"leases": held[agent]})
            except Exception:
                pass
        elif kind == "reap":
            coord.reap()
        _assert_never_split(coord)
    coord.reap()
    _assert_never_split(coord)
