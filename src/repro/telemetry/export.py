"""Exporters: JSONL event logs and metrics-JSON snapshots.

The JSONL log is one event dict per line (see
:data:`repro.telemetry.events.EVENT_SCHEMA`), in emission order — exactly
the ordered event log that offline checkers (vector-clock atomicity,
predefined-order diagnostics) consume. The metrics snapshot bundles the
registry dump with the run's :class:`repro.core.stats.RunStats` so a
single file answers both "what happened" and "how much".
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List

from .events import Event, event_from_dict
from .metrics import MetricsRegistry


def write_events_jsonl(events: Iterable[Event], path) -> int:
    """Write events as JSON Lines; returns the number of lines written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), separators=(",", ":")))
            fh.write("\n")
            n += 1
    return n


def read_events_jsonl(path) -> List[Event]:
    """Load a JSONL event log back into typed events."""
    out: List[Event] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(event_from_dict(json.loads(line)))
    return out


class JsonlExporter:
    """A streaming bus subscriber writing one JSON line per event.

    For runs too large to buffer in an :class:`EventRecorder`. Use as a
    context manager or call :meth:`close` when the run ends.
    """

    def __init__(self, path_or_file):
        if hasattr(path_or_file, "write"):
            self._fh: IO[str] = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w", encoding="utf-8")
            self._owns = True
        self.n_events = 0

    def __call__(self, event: Event) -> None:
        self._fh.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._fh.write("\n")
        self.n_events += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
def metrics_snapshot(metrics: MetricsRegistry, stats=None) -> dict:
    """The metrics-JSON document: registry dump + optional RunStats."""
    doc = {"schema": "repro.metrics/1", "metrics": metrics.snapshot()}
    if stats is not None:
        doc["stats"] = stats.to_dict()
    return doc


def write_metrics_json(metrics: MetricsRegistry, path, stats=None) -> None:
    """Write the metrics snapshot (and RunStats, if given) to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics_snapshot(metrics, stats), fh, indent=2)
        fh.write("\n")
