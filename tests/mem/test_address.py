"""Tests for the address space and line/home mapping."""

import pytest

from repro.errors import MemoryError_
from repro.mem import AddressSpace


class TestRegions:
    def test_alloc_and_addr(self):
        space = AddressSpace()
        r = space.alloc("a", 10)
        assert r.addr(0) == r.base
        assert r.addr(9) == r.base + 9

    def test_bounds_checked(self):
        space = AddressSpace()
        r = space.alloc("a", 10)
        with pytest.raises(MemoryError_):
            r.addr(10)
        with pytest.raises(MemoryError_):
            r.addr(-1)

    def test_names_unique(self):
        space = AddressSpace()
        space.alloc("a", 1)
        with pytest.raises(MemoryError_):
            space.alloc("a", 1)

    def test_line_alignment_prevents_false_sharing(self):
        space = AddressSpace(line_bytes=64)
        a = space.alloc("a", 3)
        b = space.alloc("b", 3)
        assert space.line_of(a.addr(2)) != space.line_of(b.addr(0))

    def test_unaligned_regions_can_share_lines(self):
        space = AddressSpace(line_bytes=64)
        a = space.alloc("a", 3, line_aligned=False)
        b = space.alloc("b", 3, line_aligned=False)
        assert space.line_of(a.addr(2)) == space.line_of(b.addr(0))

    def test_zero_size_rejected(self):
        with pytest.raises(MemoryError_):
            AddressSpace().alloc("z", 0)

    def test_region_lookup(self):
        space = AddressSpace()
        r = space.alloc("x", 4)
        assert space.region("x") is r
        with pytest.raises(MemoryError_):
            space.region("nope")

    def test_contains(self):
        space = AddressSpace()
        r = space.alloc("x", 4)
        assert r.addr(0) in r
        assert (r.base + 4) not in r


class TestMapping:
    def test_line_of_groups_words(self):
        space = AddressSpace(line_bytes=64)  # 8 words per line
        assert space.line_of(0) == 0
        assert space.line_of(7) == 0
        assert space.line_of(8) == 1

    def test_home_tile_interleaves_lines(self):
        space = AddressSpace(line_bytes=64, n_tiles=4)
        homes = {space.home_tile(i * 8) for i in range(8)}
        assert homes == {0, 1, 2, 3}

    def test_line_bytes_must_be_word_multiple(self):
        with pytest.raises(MemoryError_):
            AddressSpace(line_bytes=60)
