"""Tests for the benchmark harness and report tables."""

import pytest

from repro.apps import mis
from repro.bench.harness import AppRun, run_app, run_serial, sweep_cores
from repro.bench.report import breakdown_table, format_table, speedup_table
from repro.config import SystemConfig


@pytest.fixture(scope="module")
def tiny_graph():
    return mis.make_input(scale=4, edge_factor=3)


class TestRunApp:
    def test_runs_and_checks(self, tiny_graph):
        run = run_app(mis, tiny_graph, variant="fractal", n_cores=4)
        assert isinstance(run, AppRun)
        assert run.n_cores == 4
        assert run.makespan > 0

    def test_variant_routing_sets_root_ordering(self, tiny_graph):
        run = run_app(mis, tiny_graph, variant="swarm", n_cores=4)
        assert run.handles["_sim"].root_domain.ordering.is_ordered

    def test_custom_config(self, tiny_graph):
        cfg = SystemConfig.with_cores(4, conflict_mode="precise")
        run = run_app(mis, tiny_graph, variant="flat", config=cfg)
        assert run.stats.false_positive_conflicts == 0

    def test_audit_flag(self, tiny_graph):
        run_app(mis, tiny_graph, variant="fractal", n_cores=4, audit=True)

    def test_run_serial(self, tiny_graph):
        host = run_serial(mis, tiny_graph, variant="flat")
        assert host.tasks_executed >= tiny_graph.n

    def test_sweep_cores(self, tiny_graph):
        runs = sweep_cores(mis, tiny_graph, ["flat"], [1, 4])
        assert len(runs) == 2
        assert {r.n_cores for r in runs} == {1, 4}


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_speedup_table(self, tiny_graph):
        runs = sweep_cores(mis, tiny_graph, ["flat", "fractal"], [1, 4])
        out = speedup_table(runs, baseline_variant="flat", baseline_cores=1)
        assert "1.00x" in out
        assert "fractal" in out and "flat" in out

    def test_breakdown_table(self, tiny_graph):
        runs = sweep_cores(mis, tiny_graph, ["flat"], [4])
        out = breakdown_table(runs)
        assert "commit" in out and "%" in out
