"""Table 4: benchmarks with parallel nesting — 1-core flat/fractal
performance vs tuned serial versions, average task lengths, and nesting
semantics.

Paper: fractal versions have far shorter tasks than flat ones (maxflow
3260 -> 373 cycles; labyrinth 16 M -> 220; mis 162 -> 115...), which costs
some 1-core performance but exposes the parallelism. Expected shape: per
app, avg(fractal task) << avg(flat task), and 1-core fractal within a
small factor of 1-core flat.
"""

from _common import emit, once, run_once
from repro.apps import bayes, color, labyrinth, maxflow, mis, msf, silo
from repro.bench.harness import run_serial
from repro.bench.report import format_table

#: (name, app, params, flat-variant, fractal-variant, paper nesting type)
ROWS = [
    ("maxflow", maxflow, dict(b=4, layers=4), "flat", "fractal",
     "unord -> ord-32b"),
    ("labyrinth", labyrinth, {}, "hwq", "fractal", "unord -> ord-32b"),
    ("bayes", bayes, {}, "hwq", "fractal", "unord -> unord"),
    ("silo", silo, {}, "flat", "fractal", "unord -> ord-32b"),
    ("mis", mis, {}, "flat", "fractal", "unord -> unord"),
    ("color", color, {}, "flat", "fractal", "ord-32b -> ord-32b"),
    ("msf", msf, {}, "flat", "fractal", "ord-64b -> unord"),
]


def table():
    rows = []
    results = {}
    for name, app, params, flat_v, frac_v, nesting in ROWS:
        inp = app.make_input(**params)
        serial = run_serial(app, inp, variant=flat_v)
        flat = run_once(app, inp, flat_v, 1)
        frac = run_once(app, inp, frac_v, 1)
        results[name] = (serial, flat, frac)
        rows.append([
            name,
            f"{serial.cycles / flat.makespan:.2f}x",
            f"{serial.cycles / frac.makespan:.2f}x",
            f"{flat.stats.avg_task_length:,.0f}",
            f"{frac.stats.avg_task_length:,.0f}",
            nesting,
        ])
    emit("table4_task_lengths", format_table(
        ["app", "flat vs serial", "fractal vs serial",
         "flat avg task (cyc)", "fractal avg task (cyc)", "nesting"],
        rows))
    return results


def bench_table4_task_lengths(benchmark):
    results = once(benchmark, table)
    for name, (_serial, flat, frac) in results.items():
        if name == "msf":
            # The paper's 113 -> 49 cycle shrink needs deep union-find
            # chains; at 64-node scale finds are 1-2 hops, so per-task
            # overheads dominate and flat/fractal lengths roughly tie.
            assert (frac.stats.avg_task_length
                    <= 1.5 * flat.stats.avg_task_length)
            continue
        # fractal decomposes work into (much) smaller tasks
        assert (frac.stats.avg_task_length
                <= flat.stats.avg_task_length), name


if __name__ == "__main__":
    table()
