"""repro.farm — parallel experiment execution with a result cache.

The subsystem every sweep runs through (see README "Parallel sweeps &
result cache"):

- :class:`JobSpec` / :class:`JobResult` — one simulation run as a
  canonical, content-addressed description (:func:`canonical`,
  :func:`stable_digest`) plus its outcome;
- :class:`ResultCache` — dir-per-digest store of ``RunStats`` keyed by
  job digest and a :func:`code_fingerprint` of the source tree, so
  re-running a sweep only executes jobs whose digest is missing or whose
  code is stale;
- :class:`Farm` — the ``multiprocessing`` scheduler: worker warm-up,
  bounded in-flight backpressure, watchdog timeouts and retries reusing
  the :mod:`repro.faults` backoff curve, ordered result collection (so
  tables are byte-identical to serial runs), merged worker telemetry,
  farm-level events, and a live progress line;
- :func:`deterministic_shards` / :func:`select_shard` — stable,
  coordination-free partitioning of job sets across machines;
- :mod:`repro.farm.dist` (imported explicitly) — the distributed farm:
  a lease/heartbeat coordinator and worker agents that keep sweep
  output byte-identical to a serial run through worker kills, dropped
  heartbeats, and partitions.
"""

from .cache import CACHE_SCHEMA, ResultCache, code_fingerprint
from .farm import Farm, apply_timeout, install_sigterm_drain
from .job import (JOB_SCHEMA, JobResult, JobSpec, canonical, canonical_json,
                  execute_job, stable_digest)
from .shard import (deterministic_shards, parse_shard, select_shard,
                    shard_index)
from .validate import (SpecValidationError, validate_fault_sections,
                       validate_jobspec)

__all__ = [
    "CACHE_SCHEMA",
    "Farm",
    "JOB_SCHEMA",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "SpecValidationError",
    "apply_timeout",
    "canonical",
    "canonical_json",
    "code_fingerprint",
    "deterministic_shards",
    "execute_job",
    "install_sigterm_drain",
    "parse_shard",
    "select_shard",
    "shard_index",
    "stable_digest",
    "validate_fault_sections",
    "validate_jobspec",
]
