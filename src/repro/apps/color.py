"""Greedy graph coloring with a degree ordering heuristic (paper Sec. 6.2;
Hasenplaugh et al. [33]; input stands in for SNAP com-youtube).

Nodes are colored in largest-degree-first order (ties by id): each node
takes the smallest color unused by its already-processed neighbours. The
rank order makes this a *partially ordered* algorithm — the paper lists
color as ord-32b -> ord-32b nesting (Table 4).

Variants:

- ``flat`` — one ordered task per node (ts = rank) that atomically reads
  every neighbour's color and assigns its own.
- ``fractal`` — each node task opens an ordered subdomain: per-neighbour
  *gather* tasks (ts 0) read one neighbour color each into an edge-indexed
  scratch slot, and an *assign* task (ts 1) folds them and writes the
  node's color.
- ``swarm`` — swarm-fg: the same fine-grain tasks, but atomicity comes
  from a disjoint timestamp range per node (rank * W + k), over-serializing
  the gathers of different nodes against each other.

Because ranks totally order conflicting writes, every variant must produce
exactly the greedy-by-rank coloring — verified against a plain-Python
oracle.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import AppError
from ..graphs import Graph, rmat
from ..vt import Ordering
from .common import VARIANTS_ALL, require_variant

NO_COLOR = -1
#: timestamp slots per node in the swarm variant (gathers + assign)
_SWARM_STRIDE = 2


def make_input(scale: int = 6, edge_factor: int = 4, seed: int = 2) -> Graph:
    return rmat(scale, edge_factor, seed=seed)


def ranks(g: Graph) -> List[int]:
    """rank[v] = position of v in largest-degree-first order."""
    order = sorted(range(g.n), key=lambda v: (-g.degree(v), v))
    rank = [0] * g.n
    for i, v in enumerate(order):
        rank[v] = i
    return rank


def reference(g: Graph) -> List[int]:
    """The greedy-by-rank coloring every variant must match."""
    rank = ranks(g)
    order = sorted(range(g.n), key=lambda v: rank[v])
    color = [NO_COLOR] * g.n
    for v in order:
        used = {color[n] for n in g.neighbors(v) if color[n] != NO_COLOR}
        c = 0
        while c in used:
            c += 1
        color[v] = c
    return color


def build(host, g: Graph, variant: str = "fractal") -> Dict:
    require_variant(variant, VARIANTS_ALL)
    color = host.array("color.color", g.n, fill=NO_COLOR)
    adj = [tuple(g.neighbors(v)) for v in range(g.n)]
    rank = ranks(g)

    # Edge-indexed scratch for the fractal/swarm gather tasks.
    offsets = [0] * g.n
    total = 0
    for v in range(g.n):
        offsets[v] = total
        total += len(adj[v])
    # one line per gather slot: sibling gathers must not false-share
    scratch = host.array("color.scratch", max(total, 1) * 8, fill=NO_COLOR)

    def first_free(used) -> int:
        c = 0
        while c in used:
            c += 1
        return c

    def color_flat(ctx, v):
        used = set()
        for ngh in adj[v]:
            c = color.get(ctx, ngh)
            if c != NO_COLOR:
                used.add(c)
        color.set(ctx, v, first_free(used))

    def gather(ctx, v, k):
        scratch.set(ctx, (offsets[v] + k) * 8, color.get(ctx, adj[v][k]))

    def assign(ctx, v):
        used = set()
        for k in range(len(adj[v])):
            c = scratch.get(ctx, (offsets[v] + k) * 8)
            if c != NO_COLOR:
                used.add(c)
        color.set(ctx, v, first_free(used))

    def color_fractal(ctx, v):
        if not adj[v]:
            color.set(ctx, v, 0)
            return
        ctx.create_subdomain(Ordering.ORDERED_32)
        for k in range(len(adj[v])):
            ctx.enqueue_sub(gather, v, k, ts=0, hint=adj[v][k], label="gather")
        ctx.enqueue_sub(assign, v, ts=1, hint=v, label="assign")

    def color_swarm(ctx, v):
        if not adj[v]:
            color.set(ctx, v, 0)
            return
        base = ctx.timestamp
        for k in range(len(adj[v])):
            ctx.enqueue(gather, v, k, ts=base, hint=adj[v][k], label="gather")
        ctx.enqueue(assign, v, ts=base + 1, hint=v, label="assign")

    fn = {"flat": color_flat, "fractal": color_fractal,
          "swarm": color_swarm}[variant]
    for v in range(g.n):
        ts = rank[v] * (_SWARM_STRIDE if variant == "swarm" else 1)
        host.enqueue_root(fn, v, ts=ts, hint=v, label="node")
    return {"color": color, "graph": g}


def root_ordering(variant: str) -> Ordering:
    return Ordering.ORDERED_32


def check(handles: Dict, g: Graph) -> int:
    """Proper coloring matching the greedy oracle; returns color count."""
    got = handles["color"].snapshot()
    for u, v in g.edges():
        if got[u] == got[v]:
            raise AppError(f"adjacent nodes {u},{v} share color {got[u]}")
    want = reference(g)
    if got != want:
        diffs = [v for v in range(g.n) if got[v] != want[v]][:5]
        raise AppError(f"coloring differs from greedy oracle at {diffs}")
    return max(got) + 1 if g.n else 0
