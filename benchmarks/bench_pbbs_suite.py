"""PBBS deterministic-reservation suite: spanning / contract / refine.

Two paper-style tables:

- ``pbbs_variants`` — makespan of every variant (flat, swarm, fractal,
  specfor) across the core sweep, normalized to flat@1c. The specfor
  column shows the cost/benefit of round-based reservations *inside* a
  fractal domain against the same app written as flat ordered tasks or
  hand-nested fractal tasks.
- ``pbbs_granularity`` — the specfor variant swept across round
  granularities (PBBS ``maxRoundSize = n/granularity + 1``): coarse
  rounds expose more parallelism per phase barrier but carry more
  reservation losers between rounds.
"""

from _common import core_counts, emit, once, run_once
from repro.apps.pbbs import contract, refine, spanning
from repro.bench.report import format_table

SUITE = [
    ("spanning", spanning, dict(scale=6, edge_factor=3)),
    ("contract", contract, dict(n=64)),
    ("refine", refine, dict(width=10, n_ops=64)),
]

VARIANTS = ("flat", "swarm", "fractal", "specfor")
GRANULARITIES = (2, 8, 32)


def sweep_variants(cores, suite=SUITE, tag=""):
    rows = []
    results = {}
    for name, app, params in suite:
        inp = app.make_input(**params)
        base = None
        for variant in VARIANTS:
            row = [name, variant]
            for n in cores:
                run = run_once(app, inp, variant, n)
                results[(name, variant, n)] = run
                if base is None:
                    base = run.makespan
                row.append(f"{base / run.makespan:.2f}x")
            rows.append(row)
    emit(f"pbbs_variants{tag}",
         format_table(["app", "variant"] + [f"{n}c" for n in cores], rows))
    return results


def sweep_granularity(cores, suite=SUITE, tag=""):
    rows = []
    results = {}
    top = max(cores)
    for name, app, params in suite:
        inp = app.make_input(**params)
        for g in GRANULARITIES:
            row = [name, str(g)]
            for n in cores:
                run = run_once(app, inp, "specfor", n, granularity=g)
                results[(name, g, n)] = run
                row.append(str(run.makespan))
            rows.append(row)
    emit(f"pbbs_granularity{tag}",
         format_table(["app", "granularity"] + [f"{n}c" for n in cores],
                      rows))
    return results


def bench_pbbs_variants(benchmark):
    cores = core_counts(quick=True)
    results = once(benchmark, lambda: sweep_variants(cores))
    top = max(cores)
    for name, _, _ in SUITE:
        for variant in VARIANTS:
            assert results[(name, variant, top)].stats.completed, \
                (name, variant)


def bench_pbbs_granularity(benchmark):
    cores = core_counts(quick=True)
    results = once(benchmark, lambda: sweep_granularity(cores))
    top = max(cores)
    for name, _, _ in SUITE:
        for g in GRANULARITIES:
            assert results[(name, g, top)].stats.completed, (name, g)


if __name__ == "__main__":
    cores = core_counts()
    sweep_variants(cores)
    sweep_granularity(cores)
