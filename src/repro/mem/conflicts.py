"""Conflict-detection models: Bloom signatures vs. idealized precise.

The simulator detects *true* conflicts exactly (via the reader/writer
indices in :class:`repro.mem.memory.SpecMemory`); the conflict model adds
the behaviour that distinguishes real hardware:

- :class:`PreciseConflictModel` — the paper's idealized scheme with no
  false positives (dashed lines in Fig. 14a).
- :class:`BloomConflictModel` — 2 Kbit 8-way H3 signatures per task. Each
  task maintains bit-accurate read/write signatures; every access then
  probes the signatures of all other live speculative tasks. Probing every
  pair bit-by-bit is exact but quadratic, so the model *samples* false
  positives from the true per-signature false-positive rates (which come
  from actual signature occupancy): the expected number of spurious hits
  per access is preserved, and a sampled hit aborts exactly what hardware
  would abort — the later of {accessor, falsely-matching task}. Small runs
  and unit tests can enable ``exact=True`` to probe pairwise instead.

Both models also answer "who must die" for true conflicts identically, via
the earlier-VT-wins policy (paper Sec. 4.1: on a conflict, abort only
descendants and data-dependent tasks — the cascade itself is computed by
the simulator).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import numpy as np

from .bloom import BloomSignature, H3HashFamily, SignatureBank


class ConflictPolicy:
    """Base conflict model: tracks live speculative tasks.

    Owners (task attempts) must expose ``order_key()`` plus ``sig_read`` /
    ``sig_write`` attributes, which this model installs at registration.
    """

    name = "abstract"

    #: peak-live-tasks gauge (installed by the simulator; None = off).
    #: register() implementations bump it inline to keep the hot path flat.
    _live_gauge = None

    #: whether false_conflict() may return non-None / consume RNG.
    #: SpecMemory elides the per-access sampler call when False.
    samples_false_positives = True

    def register(self, owner) -> None:
        """Called when ``owner`` starts running speculatively."""
        raise NotImplementedError

    def unregister(self, owner) -> None:
        """Called at commit or abort."""
        raise NotImplementedError

    def note_access(self, owner, line: int, is_write: bool) -> None:
        """Record that ``owner`` touched ``line``."""
        raise NotImplementedError

    def false_conflict(self, owner, line: int, is_write: bool):
        """Return a falsely-conflicting live task (or None).

        A non-None result means a signature somewhere aliased this access;
        the simulator aborts the later of (owner, result).
        """
        raise NotImplementedError

    def live_owners(self) -> List:
        """Live registered owners, in registration order (used by
        :meth:`repro.mem.memory.SpecMemory.refresh_order_keys`)."""
        raise NotImplementedError


class PreciseConflictModel(ConflictPolicy):
    """Idealized precise conflict detection — never a false positive."""

    name = "precise"
    samples_false_positives = False

    def __init__(self):
        # insertion-ordered on purpose (like the simulator's _live): any
        # iteration over live tasks must not depend on object addresses
        self._live: Dict = {}

    def register(self, owner) -> None:
        self._live[owner] = None
        g = self._live_gauge
        if g is not None and len(self._live) > g.value:
            g.value = len(self._live)
        owner.sig_read = None
        owner.sig_write = None

    def unregister(self, owner) -> None:
        self._live.pop(owner, None)

    def note_access(self, owner, line: int, is_write: bool) -> None:
        pass

    def false_conflict(self, owner, line: int, is_write: bool):
        return None

    def live_owners(self) -> List:
        return list(self._live)

    @property
    def live_count(self) -> int:
        return len(self._live)


class BloomConflictModel(ConflictPolicy):
    """Per-task H3 Bloom signatures with sampled false positives."""

    name = "bloom"

    def __init__(self, bits: int = 2048, ways: int = 8, seed: int = 0,
                 exact: bool = False):
        self.family = H3HashFamily(k=ways, m_bits=bits, seed=seed)
        self._rng = random.Random(seed ^ 0xB100F)
        self._rand = self._rng.random  # bound once: called on every access
        self.exact = exact
        # registration-ordered: the sampled victim walk and the exact
        # probe order iterate this — set iteration would make the chosen
        # victim depend on object addresses and differ run to run
        self._live: Dict = {}
        # exact mode mirrors every signature into struct-of-arrays banks
        # (one row per live task) so a probe against the whole live set is
        # a single vectorized pass instead of a Python pair loop
        self._bank_read = SignatureBank(self.family) if exact else None
        self._bank_write = SignatureBank(self.family) if exact else None
        #: running sum of per-live-task false-positive rates (read+write sigs)
        self._fp_sum = 0.0
        #: spurious conflicts generated, for stats
        self.false_positives = 0
        #: live tasks examined by victim sampling / exact probing
        #: (profiling; folded into metrics only under `repro profile`)
        self.probe_steps = 0
        #: vectorized whole-bank probes issued (exact mode; profiling)
        self.bank_probes = 0

    # ------------------------------------------------------------------
    def register(self, owner) -> None:
        self._live[owner] = None
        g = self._live_gauge
        if g is not None and len(self._live) > g.value:
            g.value = len(self._live)
        owner.sig_read = BloomSignature(self.family)
        owner.sig_write = BloomSignature(self.family)
        owner._fp_cached = 0.0
        if self.exact:
            # both banks allocate in lockstep, so one row id serves both
            row = self._bank_read.acquire()
            self._bank_write.acquire()
            owner._sig_row = row

    def unregister(self, owner) -> None:
        if owner in self._live:
            del self._live[owner]
            self._fp_sum -= owner._fp_cached
            if self._fp_sum < 0:
                self._fp_sum = 0.0
            if self.exact:
                self._bank_read.release(owner._sig_row)
                self._bank_write.release(owner._sig_row)
                owner._sig_row = -1

    def note_access(self, owner, line: int, is_write: bool) -> None:
        sig = owner.sig_write if is_write else owner.sig_read
        if self.exact:
            bank = self._bank_write if is_write else self._bank_read
            bank.insert(owner._sig_row, line)
        if not sig.insert(line):
            # no new bits set: both fills — and therefore the pair rate —
            # are exactly what the last access computed, so the running
            # sum is already correct (the delta would be a literal +0.0)
            return
        new_fp = self._pair_rate(owner)
        self._fp_sum += new_fp - owner._fp_cached
        owner._fp_cached = new_fp

    @staticmethod
    def _pair_rate(owner) -> float:
        """Probability an unrelated access false-hits either signature."""
        fr = owner.sig_read.false_positive_rate()
        fw = owner.sig_write.false_positive_rate()
        return fr + fw - fr * fw

    # ------------------------------------------------------------------
    def false_conflict(self, owner, line: int, is_write: bool):
        if len(self._live) <= 1:
            return None
        if self.exact:
            return self._probe_exact(owner, line, is_write)
        # Expected spurious hits for this access is the sum of the other
        # live tasks' false-positive rates; sample one Bernoulli draw with
        # that mean (clamped), then pick the victim weighted by rate.
        p = self._fp_sum - owner._fp_cached
        if p <= 0.0:
            return None
        if self._rand() >= (p if p < 1.0 else 1.0):
            return None
        pick = self._rand() * p
        acc = 0.0
        chosen = None
        for other in self._live:
            self.probe_steps += 1
            # A task with an empty (zero-rate) signature cannot falsely
            # match anything; skipping it keeps float drift in the running
            # sums (and a pick of exactly 0.0) from electing an impossible
            # victim at the boundaries of the weighted walk.
            if other is owner or other._fp_cached <= 0.0:
                continue
            acc += other._fp_cached
            chosen = other
            if acc >= pick:
                break
        if chosen is not None:
            self.false_positives += 1
        return chosen

    def _probe_exact(self, owner, line: int, is_write: bool):
        """Bit-accurate probe of every live signature (small runs only).

        A write probes the other task's read and write signatures; a read
        probes only its write signature — the standard RW/WW conflict
        matrix. Only lines the prober did not truly touch can be *false*
        hits; true hits are handled by the exact indices, so we report any
        signature hit and let the caller dedupe against true conflicts.

        The whole live set is probed in one vectorized pass over the
        signature banks; hits are then resolved in registration order,
        which matches the old per-pair Python walk exactly (same first
        match, same victim).
        """
        owners = list(self._live)
        n = len(owners)
        self.probe_steps += n
        self.bank_probes += 1
        rows = np.fromiter((o._sig_row for o in owners),
                           dtype=np.intp, count=n)
        hits = self._bank_write.probe_rows(line, rows)
        if is_write:
            hits |= self._bank_read.probe_rows(line, rows)
        for i in np.flatnonzero(hits):
            other = owners[i]
            if other is owner:
                continue
            if not self._truly_touches(other, line, is_write):
                self.false_positives += 1
                return other
        return None

    def live_owners(self) -> List:
        return list(self._live)

    @staticmethod
    def _truly_touches(other, line: int, is_write: bool) -> bool:
        if line in other.write_lines:
            return True
        return is_write and line in other.read_lines

    @property
    def live_count(self) -> int:
        return len(self._live)


def make_conflict_model(mode: str, *, bits: int = 2048, ways: int = 8,
                        seed: int = 0, exact: bool = False) -> ConflictPolicy:
    """Factory used by the simulator (``config.conflict_mode``)."""
    if mode == "precise":
        return PreciseConflictModel()
    if mode == "bloom":
        return BloomConflictModel(bits=bits, ways=ways, seed=seed, exact=exact)
    raise ValueError(f"unknown conflict mode {mode!r}")
