"""List contraction via deterministic reservations (PBBS
``listContraction``).

A doubly-linked list of ``n`` nodes is contracted to nothing: iteration
``i`` splices node ``perm[i]`` out (relink neighbors, fold its value into
the predecessor — or the successor at the head), in a seeded random
priority order. Adjacent nodes conflict: a splice needs the node and both
neighbors, which is the classic 3-cell reservation.

The canonical result is the ``value`` array (each node's accumulated
value at the moment it was spliced) plus the all-zero ``alive`` flags;
both equal the sequential loop in iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ...errors import AppError
from ...specfor import DomainSpecFor, ReservationTable, SpecForPolicy
from ...vt import Ordering
from ..common import join_increment, require_variant, splitmix
from . import VARIANTS_PBBS

_SWARM_STRIDE = 2


@dataclass(frozen=True)
class ChainInput:
    """A linked list of ``n`` nodes with seeded values and splice order."""

    n: int
    seed: int
    values: Tuple[int, ...]
    perm: Tuple[int, ...]   # perm[i] = node spliced by iteration i


def make_input(n: int = 48, seed: int = 9) -> ChainInput:
    values = tuple(splitmix(seed * 0x1000 + k) % 97 + 1 for k in range(n))
    perm = list(range(n))
    for k in range(n - 1, 0, -1):  # Fisher–Yates off the splitmix stream
        j = splitmix(seed * 0x51ED2705 + k) % (k + 1)
        perm[k], perm[j] = perm[j], perm[k]
    return ChainInput(n=n, seed=seed, values=values, perm=tuple(perm))


def reference_result(inp: ChainInput) -> Tuple[list, list]:
    """Sequential splices in iteration order (plain Python)."""
    n = inp.n
    pred = [v - 1 for v in range(n)]
    succ = [v + 1 if v + 1 < n else -1 for v in range(n)]
    value = list(inp.values)
    alive = [1] * n
    for i in range(n):
        v = inp.perm[i]
        p, s = pred[v], succ[v]
        if p >= 0:
            succ[p] = s
        if s >= 0:
            pred[s] = p
        if p >= 0:
            value[p] += value[v]
        elif s >= 0:
            value[s] += value[v]
        alive[v] = 0
    return value, alive


def build(host, inp: ChainInput, variant: str = "specfor",
          granularity: int = 8) -> Dict:
    require_variant(variant, VARIANTS_PBBS)
    n = inp.n
    perm = inp.perm
    pred = host.array("contract.pred", max(n, 1),
                      init=[v - 1 for v in range(n)] or [0])
    succ = host.array("contract.succ", max(n, 1),
                      init=[v + 1 if v + 1 < n else -1
                            for v in range(n)] or [0])
    value = host.array("contract.value", max(n, 1), init=inp.values or [0])
    alive = host.array("contract.alive", max(n, 1), fill=1)
    # per-iteration join counter, one cache line apart
    scratch = host.array("contract.scratch", max(n, 1) * 8)
    resv = ReservationTable.alloc(host, "contract.resv", n)

    def splice_links(ctx, v, p, s):
        if p >= 0:
            succ.set(ctx, p, s)
        if s >= 0:
            pred.set(ctx, s, p)

    def fold(ctx, v, p, s):
        if p >= 0:
            value.add(ctx, p, value.get(ctx, v))
        elif s >= 0:
            value.add(ctx, s, value.get(ctx, v))
        alive.set(ctx, v, 0)

    # --- flat: one atomic splice per iteration ------------------------
    def op_flat(ctx, i):
        v = perm[i]
        p, s = pred.get(ctx, v), succ.get(ctx, v)
        splice_links(ctx, v, p, s)
        fold(ctx, v, p, s)

    # --- fractal: relink halves in an unordered subdomain -------------
    class _CellView:
        __slots__ = ("addr",)

        def __init__(self, addr):
            self.addr = addr

        def add(self, ctx, delta):
            new = ctx.load(self.addr) + delta
            ctx.store(self.addr, new)
            return new

    def relink_task(ctx, i, v, p, s, side):
        if side == 0:
            if p >= 0:
                succ.set(ctx, p, s)
        else:
            if s >= 0:
                pred.set(ctx, s, p)
        if join_increment(ctx, _CellView(scratch.addr(i * 8)), 2):
            ctx.enqueue(fold, v, p, s, hint=v, label="fold")

    def op_fractal(ctx, i):
        v = perm[i]
        p, s = pred.get(ctx, v), succ.get(ctx, v)
        ctx.create_subdomain(Ordering.UNORDERED)
        ctx.enqueue_sub(relink_task, i, v, p, s, 0, hint=p, label="relink")
        ctx.enqueue_sub(relink_task, i, v, p, s, 1, hint=s, label="relink")

    # --- swarm: the same fine tasks on a disjoint timestamp range -----
    def swarm_left(ctx, v):
        p, s = pred.get(ctx, v), succ.get(ctx, v)
        if p >= 0:
            succ.set(ctx, p, s)

    def swarm_right(ctx, v):
        p, s = pred.get(ctx, v), succ.get(ctx, v)
        if s >= 0:
            pred.set(ctx, s, p)

    def swarm_fold(ctx, v):
        # v's own pointers are never rewritten, so they are still the
        # pre-splice neighbors here
        fold(ctx, v, pred.get(ctx, v), succ.get(ctx, v))

    def op_swarm(ctx, i):
        v = perm[i]
        base = ctx.timestamp
        ctx.enqueue(swarm_left, v, ts=base, hint=v, label="relink")
        ctx.enqueue(swarm_right, v, ts=base, hint=v, label="relink")
        ctx.enqueue(swarm_fold, v, ts=base + 1, hint=v, label="fold")

    # --- specfor: reserve self + both neighbors -----------------------
    class ContractStep:
        def reserve(self, ctx, i):
            v = perm[i]
            p, s = pred.get(ctx, v), succ.get(ctx, v)
            resv.write_min(ctx, v, i)
            if p >= 0:
                resv.write_min(ctx, p, i)
            if s >= 0:
                resv.write_min(ctx, s, i)
            return True

        def commit(self, ctx, i):
            v = perm[i]
            p, s = pred.get(ctx, v), succ.get(ctx, v)
            if not resv.holds(ctx, v, i):
                return False
            if p >= 0 and not resv.holds(ctx, p, i):
                return False
            if s >= 0 and not resv.holds(ctx, s, i):
                return False
            splice_links(ctx, v, p, s)
            fold(ctx, v, p, s)
            # release the held cells: the neighbors stay contended and a
            # stale winning priority would block them forever
            resv.reset(ctx, v)
            if p >= 0:
                resv.reset(ctx, p)
            if s >= 0:
                resv.reset(ctx, s)
            return True

    if variant == "specfor":
        engine = DomainSpecFor(host, "contract", ContractStep(), n,
                               policy=SpecForPolicy(granularity=granularity))
        engine.enqueue_driver(host)
        return {"value": value, "alive": alive, "input": inp,
                "engine": engine}

    fn = {"flat": op_flat, "fractal": op_fractal, "swarm": op_swarm}[variant]
    stride = _SWARM_STRIDE if variant == "swarm" else 1
    for i in range(n):
        host.enqueue_root(fn, i, ts=i * stride, hint=perm[i], label="op")
    return {"value": value, "alive": alive, "input": inp}


def root_ordering(variant: str) -> Ordering:
    return Ordering.UNORDERED if variant == "specfor" else Ordering.ORDERED_32


def result_arrays(handles: Dict) -> Dict[str, list]:
    return {"value": handles["value"].snapshot(),
            "alive": handles["alive"].snapshot()}


def check(handles: Dict, inp: ChainInput) -> int:
    """Value/alive arrays must equal the sequential reference; every
    node must have been spliced. Returns the fold count."""
    value = handles["value"].snapshot()
    alive = handles["alive"].snapshot()
    want_value, want_alive = reference_result(inp)
    if alive != want_alive:
        left = [v for v in range(inp.n) if alive[v]]
        raise AppError(f"nodes never spliced: {left[:10]}")
    if value != want_value:
        diff = [v for v, (a, b) in enumerate(zip(value, want_value))
                if a != b]
        raise AppError(
            f"value differs from the sequential reference at nodes "
            f"{diff[:10]} ({len(diff)} total)")
    return inp.n
