"""Commit-queue pressure: FINISH_STALLED cores and pressure aborts.

Paper Sec. 4.1: when every commit-queue entry holds a finished task that
cannot commit (an earlier task is still running), the tile frees space by
aborting the highest-timestamp finished task. These tests drive that path
directly: a long-running timestamp-0 task pins the GVT while a stream of
short later tasks fills the commit queue.
"""

from repro import Ordering, Simulator, SystemConfig


def _long_anchor(ctx):
    ctx.compute(200_000)
    ctx.store(0, 1)


def _short(ctx, i):
    # well past the anchor's cache line: the shorts must wedge the commit
    # queue, not lose a line-granularity conflict to the anchor
    ctx.store((i + 1) * 1024, i)


def _build(n_short=8, commit_queue_per_core=1):
    cfg = SystemConfig.with_cores(
        2, conflict_mode="precise",
        commit_queue_per_core=commit_queue_per_core)
    assert cfg.n_tiles == 1
    sim = Simulator(cfg, root_ordering=Ordering.ORDERED_32,
                    name="cq-pressure")
    sim.enqueue_root(_long_anchor, ts=0, label="anchor")
    for i in range(n_short):
        sim.enqueue_root(_short, i, ts=i + 1, label="short")
    return sim


class TestCommitQueuePressure:
    def test_pressure_aborts_highest_timestamp_finished_task(self):
        log = []
        sim = _build()
        sim.bus.subscribe(log.append)
        stats = sim.run()
        assert stats.tasks_committed == 9        # everything lands anyway
        for i in range(8):
            assert sim.memory.peek((i + 1) * 1024) == i
        pressure = [e for e in log if e.KIND == "abort"
                    and e.reason == "commit queue pressure"]
        assert pressure, "the commit queue never wedged"
        # victims are always later work than what eventually commits the
        # frontier: no pressure abort may hit the anchor
        assert all(e.label == "short" for e in pressure)
        assert stats.tasks_aborted >= len(pressure)

    def test_stalled_cores_resume_after_entries_free(self):
        log = []
        sim = _build()
        sim.bus.subscribe(log.append)
        sim.run()
        # a stall happened (the queue filled while the anchor ran)...
        assert any(e.KIND == "abort" and e.reason == "commit queue pressure"
                   for e in log)
        # ...and fully drained: nothing is left stalled or queued
        unit = sim.tiles[0].unit
        assert not unit.finish_stalled
        assert unit.commit_occupancy == 0
        assert unit.pending_count == 0

    def test_roomy_commit_queue_never_wedges(self):
        log = []
        sim = _build(commit_queue_per_core=16)
        sim.bus.subscribe(log.append)
        stats = sim.run()
        assert stats.tasks_committed == 9
        assert not any(e.KIND == "abort"
                       and e.reason == "commit queue pressure" for e in log)
