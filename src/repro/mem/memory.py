"""Versioned speculative memory (paper Sec. 4.1).

:class:`SpecMemory` is the single shared memory of a simulated chip. Every
speculative load/store flows through it:

- **Eager version management** — stores update memory in place and log the
  pre-image in the owner's undo log.
- **Eager conflict detection, earlier-VT-wins** — an access by task T
  immediately aborts every live later-VT task whose read/write set
  conflicts with it (the simulator supplies the ``abort_cascade`` callback
  that also kills descendants and data-dependent tasks).
- **Speculative forwarding with dependence tracking** — a load returns the
  latest (possibly still-speculative) value; the reader records a
  dependence on the speculative writer so that the writer's abort cascades
  to it (paper: "Swarm always forwards still-speculative data read by a
  later task. On a conflict, Swarm aborts only descendants and
  data-dependent tasks").

Conflict *detection* happens at cache-line granularity (real false
sharing); versioning and dependences are word-granular.

Owners are task attempts; the protocol they must satisfy is documented on
:class:`OwnerProtocol`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from ..errors import MemoryError_, SimulationError
from ..telemetry.events import ConflictEvent
from .address import AddressSpace
from .conflicts import ConflictPolicy, PreciseConflictModel
from .undo_log import UndoLog


class OwnerProtocol:
    """What :class:`SpecMemory` requires of a speculative owner.

    Attributes (installed by :meth:`SpecMemory.attach_owner`):

    - ``undo`` (:class:`UndoLog`), ``reads`` / ``writes`` (addr→value, for
      the serializability audit), ``read_lines`` / ``write_lines`` (sets),
      ``deps`` / ``dependents`` (owner sets), ``sig_read`` / ``sig_write``.

    Methods the owner class must provide:

    - ``order_key()`` — current fractal-VT sort key; totally orders all
      live owners and is consistent for the lifetime of each access chain.
    - ``still_executing()`` — True while the owner's stores are conceptually
      in flight (its finish event lies in the simulated future).
    """


@dataclass
class AccessRecord:
    """One access, as recorded for traces and latency accounting."""

    addr: int
    is_write: bool
    latency: int


class SpecMemory:
    """The chip's shared memory with speculative versioning."""

    def __init__(self, space: AddressSpace,
                 conflict_model: Optional[ConflictPolicy] = None,
                 default_value: Any = 0):
        self.space = space
        self.conflicts = conflict_model or PreciseConflictModel()
        self.default = default_value
        self._values: Dict[int, Any] = {}
        # line → live speculative readers / VT-ordered writer chains
        self._line_readers: Dict[int, Set] = {}
        self._line_writers: Dict[int, List] = {}
        # word → VT-ordered live speculative writer chain
        self._word_writers: Dict[int, List] = {}
        #: abort callback installed by the simulator: abort_cascade(victims,
        #: reason) must roll every victim (and its cascade) back before
        #: returning. Standalone/serial use may leave it unset as long as
        #: no conflicts arise.
        self.abort_cascade: Optional[Callable[[List, str], None]] = None
        #: notified on every poke; the simulator folds mid-run
        #: initialization pokes (fresh SpecDict slots) into the audit's
        #: initial snapshot.
        self.on_poke: Optional[Callable[[int, Any], None]] = None
        #: telemetry (installed by the simulator): a falsy bus disables
        #: conflict events; ``clock`` supplies the current cycle.
        self.bus = None
        self.clock: Callable[[], int] = lambda: 0
        #: fault injection (installed by the simulator when a plan forces
        #: conflicts): ``fault_hook(owner, line, is_write) -> bool``; True
        #: aborts the accessor as if its access had conflicted. None when
        #: injection is off — one None check per access, like ``bus``.
        self.fault_hook: Optional[Callable] = None
        # counters
        self.n_loads = 0
        self.n_stores = 0
        self.n_true_conflicts = 0
        self.n_injected_conflicts = 0
        #: candidate owners examined by per-line conflict checks (profiling;
        #: stays out of the metrics registry unless `repro profile` asks)
        self.probe_steps = 0

    # ------------------------------------------------------------------
    # owner lifecycle
    # ------------------------------------------------------------------
    def attach_owner(self, owner) -> None:
        """Initialize per-attempt speculative state on ``owner``."""
        owner.undo = UndoLog()
        owner.reads = {}
        owner.writes = {}
        owner.read_lines = set()
        owner.write_lines = set()
        owner.deps = set()
        owner.dependents = set()
        self.conflicts.register(owner)

    def detach_owner(self, owner) -> None:
        """Drop conflict-model tracking (commit and abort paths)."""
        self.conflicts.unregister(owner)

    # ------------------------------------------------------------------
    # non-speculative access (initialization / result inspection)
    # ------------------------------------------------------------------
    def poke(self, addr: int, value: Any) -> None:
        """Non-speculative store; only valid while no task speculates on
        the address (initialization and between-phase setup)."""
        if self._word_writers.get(addr):
            raise MemoryError_(f"poke({addr}) while speculative writers exist")
        self._values[addr] = value
        if self.on_poke is not None:
            self.on_poke(addr, value)

    def peek(self, addr: int) -> Any:
        """Non-speculative load of the current (possibly speculative) value."""
        return self._values.get(addr, self.default)

    def committed_snapshot(self) -> Dict[int, Any]:
        """Memory contents with all live speculative writes undone.

        Used by the auditor; O(words written speculatively).
        """
        snap = dict(self._values)
        for addr, chain in self._word_writers.items():
            if chain:
                first = chain[0]
                snap[addr] = first.undo._entries.get(addr, self.default)
        return snap

    # ------------------------------------------------------------------
    # speculative access
    # ------------------------------------------------------------------
    def load(self, owner, addr: int) -> Any:
        """Speculative load by ``owner``; may abort later conflicting tasks."""
        self.n_loads += 1
        line = self.space.line_of(addr)
        key = owner.order_key()

        chain = self._line_writers.get(line)
        if chain:
            self.probe_steps += len(chain)
            victims = [w for w in chain
                       if w is not owner and w.order_key() > key]
            if victims:
                self.n_true_conflicts += len(victims)
                if self.bus:
                    self._emit_conflict("read-write", owner, victims, line)
                self._abort(victims, "read-write conflict")
            self._abort_if_earlier_writer_running(owner, line, key, chain)
            if owner.aborted:
                return self.default

        self._sample_false_conflict(owner, line, is_write=False)
        if owner.aborted:
            # A sampled false positive against an earlier task killed the
            # accessor itself; the caller unwinds via TaskAborted.
            return self.default

        if self.fault_hook is not None:
            self._sample_injected_conflict(owner, line, is_write=False)
            if owner.aborted:
                return self.default

        value = self._values.get(addr, self.default)

        wchain = self._word_writers.get(addr)
        if wchain:
            writer = wchain[-1]
            if writer is not owner:
                owner.deps.add(writer)
                writer.dependents.add(owner)

        if addr not in owner.writes and addr not in owner.reads:
            owner.reads[addr] = value
        self._line_readers.setdefault(line, set()).add(owner)
        if line not in owner.read_lines:
            owner.read_lines.add(line)
            self.conflicts.note_access(owner, line, is_write=False)
        return value

    def store(self, owner, addr: int, value: Any) -> None:
        """Speculative store by ``owner``; aborts later readers/writers."""
        self.n_stores += 1
        line = self.space.line_of(addr)
        key = owner.order_key()

        victims = []
        readers = self._line_readers.get(line)
        if readers:
            self.probe_steps += len(readers)
            victims.extend(r for r in readers
                           if r is not owner and r.order_key() > key)
        chain = self._line_writers.get(line)
        if chain:
            self.probe_steps += len(chain)
            victims.extend(w for w in chain
                           if w is not owner and w.order_key() > key
                           and w not in victims)
        if victims:
            self.n_true_conflicts += len(victims)
            if self.bus:
                self._emit_conflict("write", owner, victims, line)
            self._abort(victims, "write conflict")
        if chain:
            self._abort_if_earlier_writer_running(owner, line, key, chain)
            if owner.aborted:
                return

        self._sample_false_conflict(owner, line, is_write=True)
        if owner.aborted:
            return

        if self.fault_hook is not None:
            self._sample_injected_conflict(owner, line, is_write=True)
            if owner.aborted:
                return

        wchain = self._word_writers.setdefault(addr, [])
        if wchain and wchain[-1] is not owner:
            # write-after-speculative-write: conservative WAW dependence so
            # the earlier writer's abort cascades here and undo chains stay
            # suffix-restorable.
            prev_writer = wchain[-1]
            owner.deps.add(prev_writer)
            prev_writer.dependents.add(owner)
        owner.undo.record(addr, self._values.get(addr, self.default))
        if not wchain or wchain[-1] is not owner:
            wchain.append(owner)

        self._values[addr] = value
        owner.writes[addr] = value
        lchain = self._line_writers.setdefault(line, [])
        if not lchain or lchain[-1] is not owner:
            lchain.append(owner)
        if line not in owner.write_lines:
            owner.write_lines.add(line)
            self.conflicts.note_access(owner, line, is_write=True)

    # ------------------------------------------------------------------
    def _abort_if_earlier_writer_running(self, owner, line: int,
                                         key, chain) -> None:
        """Kill the accessor when an earlier-VT task that wrote this line
        is still mid-execution.

        The simulator runs each task body atomically at dispatch, so an
        earlier task's stores are already in memory even though, on real
        hardware, they would land throughout its execution and abort any
        later task that touched the line meanwhile. Treating the pending
        store window as "access now = premature" restores the hardware's
        contention behaviour: later tasks retry until the earlier writer
        finishes, after which ordinary speculative forwarding applies
        (Swarm forwards data of *finished*, still-uncommitted tasks).

        ``chain`` is the line's writer chain the caller already fetched;
        aborts of later writers mutate it in place, so it is still the
        live list (re-fetching could only swap a drained chain for None,
        which iterates the same: not at all).
        """
        if not chain:
            return
        for w in chain:
            if w is not owner and w.order_key() < key and w.still_executing():
                # Tell the scheduler when the blocking store lands, so the
                # retry happens once instead of spinning (one abort per
                # in-flight writer, as on real hardware).
                finish = getattr(w, "dispatch_time", 0) + getattr(w, "duration", 0)
                owner.retry_after = max(getattr(owner, "retry_after", 0), finish)
                self.n_true_conflicts += 1
                if self.bus:
                    self._emit_conflict("premature-access", w, [owner], line)
                self._abort([owner], "access during earlier writer")
                return

    def _emit_conflict(self, cause: str, aggressor, victims: List,
                       line: int) -> None:
        """Publish a :class:`ConflictEvent` (callers guard on ``self.bus``)."""
        self.bus.emit(ConflictEvent(
            self.clock(), line, cause,
            getattr(aggressor, "tid", -1), repr(getattr(aggressor, "vt", None)),
            getattr(getattr(aggressor, "core", None), "cid", None),
            [getattr(v, "tid", -1) for v in victims],
            [repr(getattr(v, "vt", None)) for v in victims],
            [getattr(getattr(v, "core", None), "cid", None) for v in victims]))

    def _abort(self, victims: List, reason: str) -> None:
        if self.abort_cascade is None:
            raise SimulationError(
                f"conflict ({reason}) with no abort_cascade installed")
        self.abort_cascade(victims, reason)

    def _sample_injected_conflict(self, owner, line: int,
                                  is_write: bool) -> None:
        """Fault-injection site: treat this access as a forced conflict.

        The accessor aborts (and retries) exactly as it would on a real
        false positive against an earlier task; callers guard on
        ``self.fault_hook``.
        """
        if not self.fault_hook(owner, line, is_write):
            return
        self.n_injected_conflicts += 1
        if self.bus:
            self._emit_conflict("injected", owner, [owner], line)
        self._abort([owner], "injected conflict")

    def _sample_false_conflict(self, owner, line: int, is_write: bool) -> None:
        other = self.conflicts.false_conflict(owner, line, is_write)
        if other is None or getattr(other, "aborted", False):
            return
        # Hardware aborts the later of the two; "both signatures matched"
        # carries no direction, so VT decides.
        victim = owner if owner.order_key() > other.order_key() else other
        if self.bus:
            aggressor = other if victim is owner else owner
            self._emit_conflict("false-positive", aggressor, [victim], line)
        self._abort([victim], "false positive")

    # ------------------------------------------------------------------
    # rollback / commit
    # ------------------------------------------------------------------
    def rollback(self, owner) -> None:
        """Undo ``owner``'s writes and drop its speculative footprint.

        The caller (abort cascade) must invoke this latest-first across the
        cascade so each owner is the most recent writer of its words.
        """
        for addr, prev in owner.undo.reversed_entries():
            chain = self._word_writers.get(addr)
            if not chain or chain[-1] is not owner:
                raise SimulationError(
                    f"rollback of non-tail writer at addr {addr}")
            chain.pop()
            if not chain:
                del self._word_writers[addr]
            self._values[addr] = prev
        self._scrub(owner)

    def commit(self, owner) -> None:
        """Make ``owner``'s writes permanent and drop its footprint."""
        for addr in owner.undo._entries:
            chain = self._word_writers.get(addr)
            if not chain or chain[0] is not owner:
                raise SimulationError(
                    f"commit of non-head writer at addr {addr}")
            chain.pop(0)
            if not chain:
                del self._word_writers[addr]
        self._scrub(owner)

    def _scrub(self, owner) -> None:
        for line in owner.read_lines:
            readers = self._line_readers.get(line)
            if readers:
                readers.discard(owner)
                if not readers:
                    del self._line_readers[line]
        for line in owner.write_lines:
            chain = self._line_writers.get(line)
            if chain:
                try:
                    chain.remove(owner)
                except ValueError:
                    pass
                if not chain:
                    del self._line_writers[line]
        for dep in owner.deps:
            dep.dependents.discard(owner)
        for dependent in owner.dependents:
            dependent.deps.discard(owner)
        owner.deps = set()
        owner.dependents = set()
        self.detach_owner(owner)

    # ------------------------------------------------------------------
    @property
    def live_speculative_words(self) -> int:
        """Words currently holding uncommitted speculative values."""
        return len(self._word_writers)

    def assert_quiescent(self) -> None:
        """Check that no speculative state remains (end-of-run invariant)."""
        if self._word_writers or self._line_readers or self._line_writers:
            raise SimulationError(
                f"memory not quiescent: {len(self._word_writers)} spec words, "
                f"{len(self._line_readers)} read lines, "
                f"{len(self._line_writers)} written lines")
