"""Tests for the command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import APPS, main


def run_cli(*argv):
    proc = subprocess.run([sys.executable, "-m", "repro", *argv],
                          capture_output=True, text=True, timeout=300)
    return proc


class TestCli:
    def test_apps_lists_everything(self):
        proc = run_cli("apps")
        assert proc.returncode == 0
        for name in APPS:
            assert name in proc.stdout

    def test_config_prints_table2(self):
        proc = run_cli("config")
        assert proc.returncode == 0
        assert "256 cores" in proc.stdout

    def test_run_mis(self):
        proc = run_cli("run", "mis", "--cores", "4", "--audit")
        assert proc.returncode == 0
        assert "result check: OK" in proc.stdout

    def test_run_with_serial(self):
        proc = run_cli("run", "silo", "--cores", "4", "--serial")
        assert proc.returncode == 0
        assert "serial reference" in proc.stdout

    def test_unknown_app_fails(self):
        proc = run_cli("run", "nope")
        assert proc.returncode != 0
        assert "unknown app" in proc.stderr

    def test_bad_variant_fails(self):
        proc = run_cli("run", "bfs", "--variant", "fractal")
        assert proc.returncode != 0

    def test_sweep_prints_chart(self):
        proc = run_cli("sweep", "mis", "--variants", "flat,fractal",
                       "--cores", "1,4")
        assert proc.returncode == 0
        assert "speedup vs cores" in proc.stdout
        assert "1.00x" in proc.stdout

    def test_main_callable_in_process(self, capsys):
        assert main(["config"]) == 0
        assert "GVT" in capsys.readouterr().out

    def test_every_app_importable(self):
        import importlib
        for name, (module, variants) in APPS.items():
            mod = importlib.import_module(module)
            assert hasattr(mod, "make_input")
            assert hasattr(mod, "build")
            assert hasattr(mod, "check")
