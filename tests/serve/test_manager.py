"""JobManager unit tests: admission, coalescing, quotas, drain.

Most admission tests run on an **unstarted** manager (no slot threads),
so a submitted job deterministically stays queued — that makes the
coalescing and quota paths exact, with no racing executor. Execution
tests start the manager and run the fake app in a real worker process.
"""

import threading

import pytest

from repro.farm import Farm, JobSpec, ResultCache
from repro.serve import (AdmissionError, AuthError, DrainingError,
                         JobManager, ServeConfig, TenantQuota, TokenBucket,
                         UnknownJobError)
from repro.serve.manager import DONE, FAILED, QUEUED

FAKEAPP = "tests.farm._fakeapp"


def fake_doc(n_tasks=4, **extra):
    return {"app": FAKEAPP, "variant": "fractal", "n_cores": 2,
            "input": {"n_tasks": n_tasks, **extra}}


def make_manager(tmp_path, *, cache=True, clock=None, **cfg_kw):
    cfg_kw.setdefault("workers", 1)
    cfg_kw.setdefault("warmup", False)
    config = ServeConfig(
        cache_dir=str(tmp_path / "cache") if cache else None, **cfg_kw)
    kwargs = {"clock": clock} if clock else {}
    return JobManager(config, **kwargs)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestTokenBucket:
    def test_burst_then_reject_with_retry_after(self):
        clk = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clk)
        assert [bucket.try_take() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_take()
        assert wait == pytest.approx(0.5)     # 1 token / 2 per second

    def test_refills_at_rate(self):
        clk = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1, clock=clk)
        assert bucket.try_take() == 0.0
        assert bucket.try_take() > 0.0
        clk.t += 0.1                           # exactly one token
        assert bucket.try_take() == 0.0

    def test_never_exceeds_burst(self):
        clk = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clk)
        clk.t += 60.0
        assert bucket.try_take() == 0.0
        assert bucket.try_take() == 0.0
        assert bucket.try_take() > 0.0


class TestAdmission:
    def test_submit_queues_and_is_content_addressed(self, tmp_path):
        m = make_manager(tmp_path)
        job, outcome = m.submit(fake_doc())
        assert outcome == "queued"
        assert job.state == QUEUED
        from repro.farm import validate_jobspec
        assert job.digest == validate_jobspec(fake_doc()).digest()

    def test_identical_submissions_coalesce(self, tmp_path):
        m = make_manager(tmp_path)
        job1, _ = m.submit(fake_doc())
        job2, outcome = m.submit(fake_doc())
        assert outcome == "coalesced"
        assert job2 is job1
        assert job1.n_submitted == 2
        snap = m.metrics_snapshot()
        coalesced = [r for r in snap["counters"]
                     if r["name"] == "serve.coalesced_submissions"]
        assert coalesced and coalesced[0]["value"] == 1

    def test_different_specs_do_not_coalesce(self, tmp_path):
        m = make_manager(tmp_path)
        job1, _ = m.submit(fake_doc(4))
        job2, outcome = m.submit(fake_doc(6))
        assert outcome == "queued"
        assert job2 is not job1

    def test_queue_quota_rejects_with_429(self, tmp_path):
        m = make_manager(tmp_path,
                         default_quota=TenantQuota("anonymous",
                                                   queue_limit=2))
        m.submit(fake_doc(4))
        m.submit(fake_doc(5))
        with pytest.raises(AdmissionError) as ei:
            m.submit(fake_doc(6))
        assert ei.value.reason == "queue"
        assert ei.value.retry_after > 0
        snap = m.metrics_snapshot()
        rejects = [r for r in snap["counters"]
                   if r["name"] == "serve.admission_reject"]
        assert rejects[0]["labels"] == {"reason": "queue",
                                        "tenant": "anonymous"}

    def test_rate_limit_rejects_with_retry_after(self, tmp_path):
        clk = FakeClock()
        m = make_manager(tmp_path, clock=clk,
                         default_quota=TenantQuota("anonymous", rate=1.0,
                                                   burst=1))
        m.submit(fake_doc())
        with pytest.raises(AdmissionError) as ei:
            m.submit(fake_doc())               # would coalesce, but rate
        assert ei.value.reason == "rate"
        assert ei.value.retry_after == pytest.approx(1.0)
        clk.t += 1.0
        _, outcome = m.submit(fake_doc())
        assert outcome == "coalesced"

    def test_queue_depth_gauge_tracks_tenant(self, tmp_path):
        m = make_manager(tmp_path)
        m.submit(fake_doc(4))
        m.submit(fake_doc(5))
        snap = m.metrics_snapshot()
        depth = [r for r in snap["gauges"]
                 if r["name"] == "serve.queue_depth"]
        assert depth[0]["value"] == 2

    def test_validation_error_propagates(self, tmp_path):
        from repro.farm import SpecValidationError
        m = make_manager(tmp_path)
        with pytest.raises(SpecValidationError):
            m.submit({"app": "nope"})

    def test_unknown_job_id(self, tmp_path):
        with pytest.raises(UnknownJobError):
            make_manager(tmp_path).job("deadbeef")


class TestTenants:
    def quota_cfg(self, tmp_path, **kw):
        return make_manager(
            tmp_path,
            tenants={"k-alice": TenantQuota("alice", queue_limit=1)}, **kw)

    def test_api_key_selects_tenant(self, tmp_path):
        m = self.quota_cfg(tmp_path)
        job, _ = m.submit(fake_doc(), api_key="k-alice")
        assert job.tenant == "alice"

    def test_unknown_key_is_rejected(self, tmp_path):
        with pytest.raises(AuthError):
            self.quota_cfg(tmp_path).submit(fake_doc(), api_key="k-bob")

    def test_require_key_rejects_anonymous(self, tmp_path):
        m = self.quota_cfg(tmp_path, require_key=True)
        with pytest.raises(AuthError):
            m.submit(fake_doc())
        m.submit(fake_doc(), api_key="k-alice")

    def test_quotas_are_per_tenant(self, tmp_path):
        m = self.quota_cfg(tmp_path)
        m.submit(fake_doc(4), api_key="k-alice")
        with pytest.raises(AdmissionError):    # alice's queue_limit=1
            m.submit(fake_doc(5), api_key="k-alice")
        _, outcome = m.submit(fake_doc(5))     # anonymous unaffected
        assert outcome == "queued"


class TestExecution:
    def test_submit_execute_then_warm_hit(self, tmp_path):
        m = make_manager(tmp_path)
        m.start()
        try:
            job, _ = m.submit(fake_doc())
            assert m.wait(job.digest, timeout=90).state == DONE
            assert job.stats is not None
            assert job.stats.tasks_committed == 4
            _, outcome = m.submit(fake_doc())
            assert outcome == "warm"
            kinds = [e["kind"] for e in job.events]
            assert kinds[0] == "job_queued"
            assert "job_start" in kinds        # slot farm telemetry routed
            assert job.events[-1]["final"] is True
        finally:
            assert m.drain(timeout=30) is True

    def test_cache_answers_across_managers(self, tmp_path):
        m1 = make_manager(tmp_path)
        m1.start()
        try:
            job, _ = m1.submit(fake_doc())
            m1.wait(job.digest, timeout=90)
        finally:
            m1.drain(timeout=30)
        m2 = make_manager(tmp_path)            # same cache dir, fresh table
        job2, outcome = m2.submit(fake_doc())
        assert outcome == "warm"
        assert job2.cached is True
        assert job2.state == DONE
        assert job2.stats.to_dict() == job.stats.to_dict()

    def test_failed_job_reports_error_and_can_resubmit(self, tmp_path):
        m = make_manager(tmp_path, max_attempts=1)
        m.start()
        try:
            doc = fake_doc(fail_times=99, scratch=str(tmp_path / "s"))
            job, _ = m.submit(doc)
            assert m.wait(job.digest, timeout=90).state == FAILED
            assert "transient fake-app failure" in job.error
            job2, outcome = m.submit(doc)      # failed jobs retry
            assert outcome == "queued"
            assert job2 is not job
            m.wait(job2.digest, timeout=90)
        finally:
            m.drain(timeout=30)


class TestDrain:
    def test_draining_rejects_submissions(self, tmp_path):
        m = make_manager(tmp_path)
        m.drain(timeout=0.0)
        with pytest.raises(DrainingError):
            m.submit(fake_doc())

    def test_drain_timeout_fails_pending_jobs(self, tmp_path):
        m = make_manager(tmp_path)             # never started: job stuck
        job, _ = m.submit(fake_doc())
        assert m.drain(timeout=0.05) is False
        assert job.state == FAILED
        assert "drain" in job.error
        assert job.done_evt.is_set()

    def test_clean_drain_finishes_running_jobs(self, tmp_path):
        m = make_manager(tmp_path)
        m.start()
        job, _ = m.submit(fake_doc())
        assert m.drain(timeout=90) is True
        assert job.state == DONE


class TestSubscribe:
    def test_subscriber_sees_replay_plus_live(self, tmp_path):
        m = make_manager(tmp_path)
        job, _ = m.submit(fake_doc())
        got, done = [], threading.Event()

        def push(e):
            got.append(e)
            if e.get("final"):
                done.set()

        replay = m.subscribe(job.digest, push)
        assert [e["kind"] for e in replay] == ["job_queued"]
        m.start()
        try:
            assert done.wait(timeout=90)
            seqs = [e["seq"] for e in replay + got]
            assert seqs == sorted(seqs)        # no gap, no duplicate
            assert len(seqs) == len(set(seqs))
        finally:
            m.unsubscribe(job.digest, push)
            m.drain(timeout=30)
