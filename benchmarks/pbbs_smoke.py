#!/usr/bin/env python
"""CI smoke for the PBBS deterministic-reservation family.

Four gates, all on small seeded inputs (stdlib + repro only):

1. **Variant parity** — every app (spanning, contract, refine) runs under
   every variant (flat, swarm, fractal, specfor) on the simulator and
   under the serial reference executor; all five must produce
   byte-identical canonical result arrays and pass the app's own check.
2. **Pinned stats digests** — each simulator run's ``RunStats`` is
   content-hashed and compared against ``benchmarks/pbbs_baseline.json``.
   Runs are seeded and the simulator is deterministic, so any drift is a
   determinism bug (or an intentional change: regenerate with
   ``python benchmarks/pbbs_smoke.py --pin``).
3. **Sweep parity** — a ``sweep_cores`` over the specfor matrix executed
   serially and again with ``--jobs 4`` farm workers must return
   byte-identical stats in the same order.
4. **Round telemetry** — the specfor runs must fold ``specfor_rounds``
   counters, and refine must show reservation failures (its cavities
   overlap by construction).

Exit code 0 if every gate holds, 1 otherwise.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps.pbbs import contract, refine, spanning        # noqa: E402
from repro.bench.harness import run_app, run_serial, sweep_cores  # noqa: E402
from repro.farm.job import stable_digest                      # noqa: E402

BASELINE = pathlib.Path(__file__).resolve().parent / "pbbs_baseline.json"

VARIANTS = ("flat", "swarm", "fractal", "specfor")

SUITE = [
    ("spanning", spanning, dict(scale=5, edge_factor=3, seed=5)),
    ("contract", contract, dict(n=32, seed=9)),
    ("refine", refine, dict(width=8, n_ops=32, seed=11)),
]

SMOKE_CORES = 8


def fail(msg):
    print(f"pbbs-smoke: FAIL: {msg}", file=sys.stderr)
    return 1


def run_matrix():
    """All (app, variant) simulator runs plus serial references."""
    digests = {}
    failures = []
    for name, app, params in SUITE:
        inp = app.make_input(**params)
        reference = None
        for variant in VARIANTS:
            run = run_app(app, inp, variant=variant, n_cores=SMOKE_CORES,
                          audit=True, check=True)
            result = app.result_arrays(run.handles)
            if reference is None:
                reference = result
            elif result != reference:
                failures.append(f"{name}/{variant} result diverges from "
                                f"{name}/{VARIANTS[0]}")
            digests[f"{name}/{variant}@{SMOKE_CORES}c"] = stable_digest(
                run.stats.to_dict())
            if variant == "specfor":
                m = run.metrics
                if m.total("specfor_rounds", engine=name) < 1:
                    failures.append(f"{name}/specfor folded no round "
                                    f"counters")
        serial = run_serial(app, inp, variant="specfor", check=True)
        if app.result_arrays(serial.handles) != reference:
            failures.append(f"{name} serial reference diverges")
    refine_run = run_app(refine, refine.make_input(), variant="specfor",
                         n_cores=SMOKE_CORES)
    if refine_run.metrics.total("specfor_reserve_failures",
                                engine="refine") < 1:
        failures.append("refine/specfor shows no reservation failures")
    return digests, failures


def check_digests(digests):
    if not BASELINE.exists():
        return [f"baseline {BASELINE} missing; run with --pin"]
    pinned = json.loads(BASELINE.read_text())["runs"]
    failures = []
    for label in sorted(set(pinned) | set(digests)):
        want, got = pinned.get(label), digests.get(label)
        status = "ok" if want == got else "DRIFT"
        print(f"{label:28s} {str(got)[:12]} (pinned {str(want)[:12]}) "
              f"{status}")
        if want != got:
            failures.append(f"{label}: stats digest {got} != pinned {want}")
    return failures


def check_sweep_parity():
    """Serial sweep vs --jobs 4 farm sweep: identical stats, same order."""
    name, app, params = SUITE[0]
    inp = app.make_input(**params)
    serial = sweep_cores(app, inp, ["specfor"], [2, 4], jobs=1)
    farmed = sweep_cores(app, inp, ["specfor"], [2, 4], jobs=4)
    failures = []
    if len(serial) != len(farmed):
        return [f"sweep lengths differ: {len(serial)} vs {len(farmed)}"]
    for a, b in zip(serial, farmed):
        if a.stats.to_dict() != b.stats.to_dict():
            failures.append(f"sweep stats diverge at {a.variant}@"
                            f"{a.n_cores}c (serial vs --jobs 4)")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pin", action="store_true",
                        help="rewrite the pinned digest baseline")
    args = parser.parse_args(argv)

    digests, failures = run_matrix()
    if args.pin:
        BASELINE.write_text(json.dumps(
            {"schema": "repro.pbbs-smoke-baseline/1",
             "comment": "RunStats digests of the seeded smoke matrix; "
                        "regenerate with pbbs_smoke.py --pin",
             "runs": digests}, indent=2, sort_keys=True) + "\n")
        print(f"pinned {len(digests)} digests to {BASELINE}")
        return 1 if failures else 0

    failures += check_digests(digests)
    failures += check_sweep_parity()
    if failures:
        for f in failures:
            fail(f)
        print(f"\npbbs-smoke: {len(failures)} gate(s) FAILED",
              file=sys.stderr)
        return 1
    print(f"\npbbs-smoke: all gates passed "
          f"({len(digests)} pinned runs, sweep parity ok)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
