"""Minimum spanning forest (paper Sec. 6.2; PBBS-derived [54]; input stands
in for kron_g500-logn16).

Kruskal-style: edges are processed in weight order against a union-find
structure (union by root id, no path compression — keeping finds read-only
makes the nested parallelism meaningful). Includes the PBBS filter
optimization [9]: an edge task first checks the endpoint roots and only
pays the union machinery for candidate spanning edges (this improves
absolute performance but reduces highly-parallel work, lowering
scalability — exactly the paper's note in Sec. 5).

Variants (Table 4: msf is ord-64b -> unord):

- ``flat`` — one ordered task per edge (ts = weight rank, 64-bit): find
  both roots, link if distinct.
- ``fractal`` — each edge task opens an *unordered* subdomain with two
  find tasks (one per endpoint); the last find to arrive (join counter)
  enqueues the link task into the same subdomain.
- ``swarm`` — swarm-fg: the same fine tasks with a disjoint timestamp
  range per edge (rank * 4 + k) in the ordered root domain.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import AppError
from ..graphs import Graph, rmat
from ..vt import Ordering
from .common import VARIANTS_ALL, join_increment, require_variant

_SWARM_STRIDE = 2


def make_input(scale: int = 6, edge_factor: int = 3, seed: int = 3) -> Graph:
    return rmat(scale, edge_factor, seed=seed, weighted=True)


def sorted_edges(g: Graph) -> List[Tuple[int, int, float]]:
    """Edges in increasing weight order (ties by endpoints: deterministic)."""
    return sorted(((u, v, g.weight(u, v)) for u, v in g.edges()),
                  key=lambda e: (e[2], e[0], e[1]))


def build(host, g: Graph, variant: str = "fractal") -> Dict:
    require_variant(variant, VARIANTS_ALL)
    edges = sorted_edges(g)
    parent = host.array("msf.parent", g.n, init=range(g.n))
    in_msf = host.array("msf.in_msf", max(len(edges), 1))
    # fractal/swarm per-edge scratch: two root slots + a join counter,
    # one cache line each so the two finds never false-share
    scratch = host.array("msf.scratch", max(len(edges) * 3, 1) * 8)

    def find_root(ctx, v) -> int:
        while True:
            p = parent.get(ctx, v)
            if p == v:
                return v
            v = p

    def link(ctx, eidx, ru, rv):
        """Re-validate roots (they may be stale) and union."""
        ru = find_root(ctx, ru)
        rv = find_root(ctx, rv)
        if ru == rv:
            return
        hi, lo = (ru, rv) if ru > rv else (rv, ru)
        parent.set(ctx, hi, lo)
        in_msf.set(ctx, eidx, 1)

    def edge_flat(ctx, eidx):
        u, v, _w = edges[eidx]
        ru = find_root(ctx, u)
        rv = find_root(ctx, v)
        if ru != rv:
            link(ctx, eidx, ru, rv)

    def find_task(ctx, eidx, endpoint, slot):
        root = find_root(ctx, endpoint)
        scratch.set(ctx, (eidx * 3 + slot) * 8, root)
        if join_increment(ctx, _counter(eidx), 2):
            ru = scratch.get(ctx, eidx * 3 * 8)
            rv = scratch.get(ctx, (eidx * 3 + 1) * 8)
            ctx.enqueue(link, eidx, ru, rv, hint=eidx, label="link")

    class _CellView:
        """Adapter presenting one scratch word as a SpecCell for the join."""

        __slots__ = ("addr",)

        def __init__(self, addr):
            self.addr = addr

        def add(self, ctx, delta):
            value = ctx.load(self.addr) + delta
            ctx.store(self.addr, value)
            return value

    def _counter(eidx):
        return _CellView(scratch.addr((eidx * 3 + 2) * 8))

    def edge_fractal(ctx, eidx):
        u, v, _w = edges[eidx]
        # filter optimization: cheap connectivity pre-check
        if find_root(ctx, u) == find_root(ctx, v):
            return
        ctx.create_subdomain(Ordering.UNORDERED)
        ctx.enqueue_sub(find_task, eidx, u, 0, hint=u, label="find")
        ctx.enqueue_sub(find_task, eidx, v, 1, hint=v, label="find")

    def swarm_find(ctx, eidx, endpoint, slot):
        root = find_root(ctx, endpoint)
        scratch.set(ctx, (eidx * 3 + slot) * 8, root)

    def swarm_link(ctx, eidx):
        link(ctx, eidx, scratch.get(ctx, eidx * 3 * 8),
             scratch.get(ctx, (eidx * 3 + 1) * 8))

    def edge_swarm(ctx, eidx):
        u, v, _w = edges[eidx]
        if find_root(ctx, u) == find_root(ctx, v):
            return
        base = ctx.timestamp
        ctx.enqueue(swarm_find, eidx, u, 0, ts=base, hint=u, label="find")
        ctx.enqueue(swarm_find, eidx, v, 1, ts=base, hint=v, label="find")
        ctx.enqueue(swarm_link, eidx, ts=base + 1, hint=eidx, label="link")

    fn = {"flat": edge_flat, "fractal": edge_fractal,
          "swarm": edge_swarm}[variant]
    stride = _SWARM_STRIDE if variant == "swarm" else 1
    for eidx in range(len(edges)):
        host.enqueue_root(fn, eidx, ts=eidx * stride,
                          hint=edges[eidx][0], label="edge")
    return {"parent": parent, "in_msf": in_msf, "edges": edges, "graph": g}


def root_ordering(variant: str) -> Ordering:
    return Ordering.ORDERED_64


def check(handles: Dict, g: Graph) -> float:
    """Forest weight must match networkx's MSF weight; returns the weight."""
    import networkx as nx

    edges = handles["edges"]
    flags = handles["in_msf"].snapshot()
    chosen = [edges[i] for i in range(len(edges)) if flags[i]]
    weight = sum(w for _, _, w in chosen)

    gx = g.to_networkx()
    want = sum(d["weight"] for _, _, d in
               nx.minimum_spanning_edges(gx, data=True))
    if abs(weight - want) > 1e-9:
        raise AppError(f"MSF weight {weight} != oracle {want}")
    # chosen edges must form a forest covering every component
    n_components = nx.number_connected_components(gx)
    if len(chosen) != g.n - n_components:
        raise AppError(
            f"forest has {len(chosen)} edges, expected {g.n - n_components}")
    return weight
