"""Tests for the high-level interface (paper Table 1)."""

import pytest

from repro import (
    Ordering,
    callcc,
    enqueue_all,
    enqueue_all_ordered,
    forall,
    forall_ordered,
    forall_reduce,
    forall_reduce_ordered,
    parallel,
    parallel_reduce,
)
from repro.core import highlevel
from repro.errors import DomainError


class TestForall:
    def test_forall_runs_all_iterations(self, make_sim):
        sim = make_sim(8)
        arr = sim.array("a", 10)

        def body(ctx, i):
            arr.set(ctx, i, i * 2)

        sim.enqueue_root(lambda ctx: forall(ctx, range(10), body))
        sim.run()
        assert arr.snapshot() == [i * 2 for i in range(10)]

    def test_forall_then_runs_after_all(self, make_sim):
        sim = make_sim(8)
        arr = sim.array("a", 8)
        total = sim.cell("total", 0)

        def body(ctx, i):
            arr.set(ctx, i, 1)

        def then(ctx):
            total.set(ctx, sum(arr.get(ctx, i) for i in range(8)))

        sim.enqueue_root(lambda ctx: forall(ctx, range(8), body, then=then))
        sim.run()
        assert total.peek() == 8

    def test_forall_is_atomic_with_creator(self, make_sim):
        sim = make_sim(8)
        arr = sim.array("a", 16)
        bad = sim.cell("bad", 0)

        def writer(ctx):
            forall(ctx, [0, 8], lambda c, i: arr.set(c, i, 7))

        def reader(ctx):
            if arr.get(ctx, 0) != arr.get(ctx, 8):
                bad.add(ctx, 1)

        sim.enqueue_root(writer)
        sim.enqueue_root(reader)
        sim.run()
        assert bad.peek() == 0


class TestForallOrdered:
    def test_iteration_order(self, make_sim):
        sim = make_sim(8)
        log = sim.array("log", 6)
        pos = sim.cell("pos", 0)

        def body(ctx, i):
            p = pos.get(ctx)
            log.set(ctx, p, i)
            pos.set(ctx, p + 1)

        sim.enqueue_root(
            lambda ctx: forall_ordered(ctx, [5, 3, 1, 2, 4, 0], body))
        sim.run()
        assert log.snapshot() == [5, 3, 1, 2, 4, 0]  # iteration index order

    def test_then_runs_last(self, make_sim):
        sim = make_sim(4)
        cell = sim.cell("c", 0)

        sim.enqueue_root(lambda ctx: forall_ordered(
            ctx, range(4), lambda c, i: cell.add(c, 1),
            then=lambda c: cell.set(c, cell.get(c) * 10)))
        sim.run()
        assert cell.peek() == 40


class TestReductions:
    def test_forall_reduce_sum(self, make_sim):
        sim = make_sim(8)
        acc = sim.cell("acc", 0)
        sim.enqueue_root(lambda ctx: forall_reduce(
            ctx, range(10), lambda c, i: i, acc))
        sim.run()
        assert acc.peek() == 45

    def test_forall_reduce_custom_combine(self, make_sim):
        sim = make_sim(8)
        acc = sim.cell("acc", 1)
        sim.enqueue_root(lambda ctx: forall_reduce(
            ctx, [2, 3, 4], lambda c, i: i, acc,
            combine=lambda a, b: a * b))
        sim.run()
        assert acc.peek() == 24

    def test_forall_reduce_with_then(self, make_sim):
        sim = make_sim(8)
        acc = sim.cell("acc", 0)
        out = sim.cell("out", 0)
        sim.enqueue_root(lambda ctx: forall_reduce(
            ctx, range(5), lambda c, i: i, acc,
            then=lambda c: out.set(c, acc.get(c) + 100)))
        sim.run()
        assert out.peek() == 110

    def test_forall_reduce_ordered(self, make_sim):
        sim = make_sim(8)
        acc = sim.cell("acc", 0)
        sim.enqueue_root(lambda ctx: forall_reduce_ordered(
            ctx, range(6), lambda c, i: i * i, acc))
        sim.run()
        assert acc.peek() == 55

    def test_none_contribution_skipped(self, make_sim):
        sim = make_sim(4)
        acc = sim.cell("acc", 0)
        sim.enqueue_root(lambda ctx: forall_reduce(
            ctx, range(6), lambda c, i: i if i % 2 else None, acc))
        sim.run()
        assert acc.peek() == 1 + 3 + 5


class TestParallel:
    def test_parallel_blocks(self, make_sim):
        sim = make_sim(4)
        arr = sim.array("a", 3)
        sim.enqueue_root(lambda ctx: parallel(
            ctx,
            lambda c: arr.set(c, 0, 1),
            lambda c: arr.set(c, 1, 2),
            lambda c: arr.set(c, 2, 3)))
        sim.run()
        assert arr.snapshot() == [1, 2, 3]

    def test_parallel_with_then(self, make_sim):
        sim = make_sim(4)
        arr = sim.array("a", 2)
        out = sim.cell("out", 0)
        sim.enqueue_root(lambda ctx: parallel(
            ctx,
            lambda c: arr.set(c, 0, 5),
            lambda c: arr.set(c, 1, 6),
            then=lambda c: out.set(c, arr.get(c, 0) + arr.get(c, 1))))
        sim.run()
        assert out.peek() == 11

    def test_parallel_needs_blocks(self, make_sim):
        sim = make_sim(4)
        errors = []

        def t(ctx):
            try:
                parallel(ctx)
            except DomainError as e:
                errors.append(e)

        sim.enqueue_root(t)
        sim.run()
        assert errors

    def test_parallel_reduce(self, make_sim):
        sim = make_sim(4)
        acc = sim.cell("acc", 0)
        sim.enqueue_root(lambda ctx: parallel_reduce(
            ctx, [lambda c: 10, lambda c: 20, lambda c: 30], acc))
        sim.run()
        assert acc.peek() == 60


class TestEnqueueAll:
    def test_enqueue_all(self, make_sim):
        sim = make_sim(4)
        arr = sim.array("a", 4)

        def t(ctx, i):
            arr.set(ctx, i, i + 1)

        sim.enqueue_root(lambda ctx: enqueue_all(
            ctx, t, [(i,) for i in range(4)]))
        sim.run()
        assert arr.snapshot() == [1, 2, 3, 4]

    def test_enqueue_all_ordered_range(self, make_sim):
        from repro import Simulator, SystemConfig
        sim = Simulator(SystemConfig.with_cores(4, conflict_mode="precise"),
                        root_ordering=Ordering.ORDERED_32)
        log = sim.array("log", 4)
        pos = sim.cell("pos", 0)

        def t(ctx, i):
            p = pos.get(ctx)
            log.set(ctx, p, i)
            pos.set(ctx, p + 1)

        def launcher(ctx):
            enqueue_all_ordered(ctx, t, [(i,) for i in (9, 8, 7)],
                                start_ts=ctx.timestamp + 1)

        sim.enqueue_root(launcher, ts=0)
        sim.run()
        assert log.snapshot()[:3] == [9, 8, 7]


class TestTaskAndCallcc:
    def test_task_splits_function(self, make_sim):
        sim = make_sim(4)
        cell = sim.cell("c", 0)

        def rest(ctx, x):
            cell.set(ctx, x * 2)

        def main(ctx):
            cell.set(ctx, 1)
            highlevel.task(ctx, rest, 21)

        sim.enqueue_root(main)
        sim.run()
        assert cell.peek() == 42

    def test_callcc(self, make_sim):
        sim = make_sim(4)
        cell = sim.cell("c", 0)

        def helper(ctx, cc):
            cell.set(ctx, 10)
            cc()

        def cont(ctx):
            cell.set(ctx, cell.get(ctx) + 5)

        sim.enqueue_root(lambda ctx: callcc(ctx, helper, cont))
        sim.run()
        assert cell.peek() == 15
