"""repro.faults — deterministic fault injection and resilience.

Two halves (see README "Robustness"):

- **Injection** — a :class:`FaultPlan` (JSON-loadable, seeded) drives a
  :class:`FaultInjector` that deterministically injects transient task
  exceptions, forced conflicts, runaway task durations, and queue-capacity
  squeezes into a run, so every failure path is exercisable in tests.
- **Resilience** — a :class:`ResiliencePolicy` gives the simulator
  per-task retry budgets with exponential backoff, a sliding-window
  :class:`LivelockDetector` that throttles dispatch and escalates to
  *safe mode* (serialized non-speculative execution of the GVT-leading
  task, guaranteeing forward progress), graceful task-queue overflow
  degradation, and a ``max_cycles``/wall-clock watchdog that returns
  partial :class:`repro.core.stats.RunStats` instead of raising.

On any failure (:class:`repro.errors.SimulationError`, exhausted retries,
watchdog fire) the simulator writes a *crash bundle* — telemetry event
ring buffer, per-tile queue states, GVT, offending task VTs — via
:mod:`repro.faults.crashdump`.
"""

from .chaos import (
    CHAOS_ENV,
    ChaosDrop,
    TransportChaos,
    classify_op,
    kill_after,
    wait_until,
)
from .crashdump import (
    CRASH_BUNDLE_SCHEMA,
    build_crash_bundle,
    build_farm_crash_bundle,
    validate_crash_bundle,
    write_crash_bundle,
    write_farm_crash_bundle,
)
from .injector import FaultInjector
from .plan import FaultPlan, InjectedFault, load_fault_file
from .resilience import LivelockDetector, ResiliencePolicy, backoff_delay

__all__ = [
    "CHAOS_ENV",
    "CRASH_BUNDLE_SCHEMA",
    "ChaosDrop",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "LivelockDetector",
    "ResiliencePolicy",
    "TransportChaos",
    "backoff_delay",
    "build_crash_bundle",
    "build_farm_crash_bundle",
    "classify_op",
    "kill_after",
    "load_fault_file",
    "validate_crash_bundle",
    "wait_until",
    "write_crash_bundle",
    "write_farm_crash_bundle",
]
