"""R-MAT recursive-matrix graph generator (Chakrabarti et al., SDM 2004).

The paper's mis input is an R-MAT graph with a power-law degree
distribution (8 M nodes / 168 M edges); we generate the same family at toy
scale. Standard parameters (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) follow
the Graph500/kron_g500 convention, so this generator also stands in for the
kron_g500-logn16 input of msf.
"""

from __future__ import annotations

import random

from ..errors import AppError
from .graph import Graph


def rmat(scale: int, edge_factor: int = 8, *, a: float = 0.57, b: float = 0.19,
         c: float = 0.19, seed: int = 1, directed: bool = False,
         weighted: bool = False) -> Graph:
    """Generate an R-MAT graph with ``2**scale`` nodes.

    ``edge_factor`` edges are sampled per node; duplicates and self-loops
    are removed, so the final edge count is slightly lower. With
    ``weighted``, each edge gets a deterministic weight in (0, 1).
    """
    if scale < 1 or scale > 24:
        raise AppError(f"scale {scale} out of supported range [1, 24]")
    d = 1.0 - a - b - c
    if d < 0:
        raise AppError("R-MAT probabilities must sum to <= 1")
    n = 1 << scale
    rng = random.Random(seed)
    g = Graph(n, directed=directed)
    target_edges = n * edge_factor
    for _ in range(target_edges):
        u = v = 0
        for _level in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u != v:
            g.add_edge(u, v,
                       weight=rng.random() if weighted else None)
    g.dedup()
    return g
