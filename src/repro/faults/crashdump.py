"""Crash bundles: one JSON file describing why a run died.

When a run fails — a :class:`repro.errors.SimulationError`, a
serializability violation, exhausted retries, a watchdog fire — the
simulator calls :func:`write_crash_bundle` with the exception and its
crash-dump directory. The bundle captures everything a post-mortem needs
without a debugger attached: the telemetry event ring buffer, per-tile
queue states, the GVT, the earliest live tasks with their fractal VTs,
fault-injection counts, and a partial stats snapshot.

``python -m repro.faults.crashdump <bundle.json>`` validates a bundle
against :data:`CRASH_BUNDLE_SCHEMA` (the CI smoke job runs this).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

#: schema identifier stamped into every bundle
CRASH_BUNDLE_SCHEMA = "repro.crash/1"

#: top-level keys every bundle must carry
_REQUIRED_KEYS = (
    "schema", "run", "reason", "error", "cycle", "gvt", "n_live",
    "live_tasks", "tiles", "resilience_state", "injections", "stats",
    "events", "n_events_seen",
)

_LIVE_TASK_KEYS = ("tid", "label", "state", "attempt", "n_aborts", "vt",
                   "depth")
_TILE_KEYS = ("tile", "pending", "task_queue_cap", "commit_occupancy",
              "commit_queue_cap", "finish_stalled")


def _live_sample(sim, limit: int = 10) -> List[Dict[str, Any]]:
    """The ``limit`` earliest live tasks (the ones wedging the GVT)."""
    tasks = sorted((t for t in sim._live if t.vt is not None),
                   key=lambda t: t.order_key())[:limit]
    return [{
        "tid": t.tid,
        "label": t.label,
        "state": t.state.value,
        "attempt": t.attempt,
        "n_aborts": t.n_aborts,
        "vt": repr(t.vt),
        "depth": t.domain.depth,
    } for t in tasks]


def build_crash_bundle(sim, reason: str,
                       exc: Optional[BaseException] = None) -> dict:
    """Snapshot ``sim``'s failure state as a JSON-safe dict."""
    try:
        gvt = sim._compute_gvt()
    except Exception:                         # never let diagnostics throw
        gvt = None
    injector = getattr(sim, "_faults", None)
    detector = getattr(sim, "_livelock", None)
    ring = getattr(sim, "_crash_ring", None)
    m = sim.metrics
    return {
        "schema": CRASH_BUNDLE_SCHEMA,
        "run": sim.name,
        "reason": reason,
        "error": (None if exc is None else
                  {"type": type(exc).__name__, "message": str(exc)}),
        "cycle": sim.now,
        "gvt": None if gvt is None else repr(gvt),
        "n_live": len(sim._live),
        "live_tasks": _live_sample(sim),
        "tiles": [tile.unit.snapshot() for tile in sim.tiles],
        "resilience_state": {
            "mode": None if detector is None else detector.state,
            "safe_commits": 0 if detector is None else detector.safe_commits,
        },
        "injections": None if injector is None else dict(injector.injected),
        "stats": {
            "tasks_committed": m.total("tasks", outcome="committed"),
            "tasks_aborted": m.total("tasks", outcome="aborted"),
            "tasks_squashed": m.total("tasks", outcome="squashed"),
            "enqueues": m.total("enqueues"),
            "gvt_ticks": sim.arbiter.ticks,
            "commits_total": sim.arbiter.commits_total,
        },
        "events": ([] if ring is None
                   else [e.to_dict() for e in ring]),
        "n_events_seen": 0 if ring is None else ring.n_seen,
    }


def write_crash_bundle(sim, directory: str, reason: str,
                       exc: Optional[BaseException] = None) -> str:
    """Write a bundle under ``directory``; returns the file path.

    The filename is deterministic (run name + cycle), so re-runs of the
    same failure overwrite rather than accumulate.
    """
    bundle = build_crash_bundle(sim, reason, exc)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"crash-{sim.name}-c{sim.now}.json")
    with open(path, "w") as fh:
        json.dump(bundle, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def build_farm_crash_bundle(spec, reason: str, *, attempt: int,
                            detail: str = "",
                            events: Optional[List[dict]] = None) -> dict:
    """Snapshot a Farm worker-process death as a ``repro.crash/1`` bundle.

    A worker crash has no simulator to introspect — the process is gone —
    so the simulator-shaped keys are present-but-empty and the payload
    that matters lives under ``farm``: the fragment's JobSpec content
    digest (enough to re-run the exact job) and the attempt count when
    the worker died.
    """
    return {
        "schema": CRASH_BUNDLE_SCHEMA,
        "run": spec.display,
        "reason": reason,
        "error": {"type": "WorkerCrash", "message": detail},
        "cycle": 0,
        "gvt": None,
        "n_live": 0,
        "live_tasks": [],
        "tiles": [],
        "resilience_state": {"mode": None, "safe_commits": 0},
        "injections": None,
        "stats": {},
        "events": list(events or []),
        "n_events_seen": len(events or []),
        "farm": {
            "digest": spec.digest(),
            "app": spec.app,
            "variant": spec.variant,
            "n_cores": spec.resolved_config().n_cores,
            "attempt": attempt,
        },
    }


def write_farm_crash_bundle(spec, directory: str, reason: str, *,
                            attempt: int, detail: str = "",
                            events: Optional[List[dict]] = None) -> str:
    """Write a farm worker-crash bundle; returns the file path.

    Deterministic filename (digest prefix + attempt): retried crashes of
    the same job produce distinct bundles, re-runs overwrite.
    """
    bundle = build_farm_crash_bundle(spec, reason, attempt=attempt,
                                     detail=detail, events=events)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"crash-farm-{spec.digest()[:12]}-a{attempt}.json")
    with open(path, "w") as fh:
        json.dump(bundle, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def validate_crash_bundle(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed crash bundle."""
    if not isinstance(doc, dict):
        raise ValueError("crash bundle must be a JSON object")
    if doc.get("schema") != CRASH_BUNDLE_SCHEMA:
        raise ValueError(f"bad schema {doc.get('schema')!r}, "
                         f"expected {CRASH_BUNDLE_SCHEMA!r}")
    missing = [k for k in _REQUIRED_KEYS if k not in doc]
    if missing:
        raise ValueError(f"missing bundle keys: {missing}")
    for key in ("live_tasks", "tiles", "events"):
        if not isinstance(doc[key], list):
            raise ValueError(
                f"field {key!r} must be a list, "
                f"got {type(doc[key]).__name__}")
    for i, task in enumerate(doc["live_tasks"]):
        if not isinstance(task, dict):
            raise ValueError(f"live_tasks[{i}] must be an object, "
                             f"got {type(task).__name__}")
        absent = [k for k in _LIVE_TASK_KEYS if k not in task]
        if absent:
            raise ValueError(f"live_tasks[{i}] missing {absent}")
    for i, tile in enumerate(doc["tiles"]):
        if not isinstance(tile, dict):
            raise ValueError(f"tiles[{i}] must be an object, "
                             f"got {type(tile).__name__}")
        absent = [k for k in _TILE_KEYS if k not in tile]
        if absent:
            raise ValueError(f"tiles[{i}] missing {absent}")
    from ..telemetry.validate import validate_event_dict
    for i, event in enumerate(doc["events"]):
        try:
            validate_event_dict(event)
        except Exception as e:
            raise ValueError(f"events[{i}] invalid: {e}")


def validate_paths(paths: List[str], *, out=None) -> int:
    """Validate each bundle file; returns the worst exit code seen.

    Exit codes: 0 all valid, 1 a structurally invalid bundle, 4 a file
    that is not readable JSON at all (missing, truncated mid-write, or
    garbage) — each with a field-level message, never a traceback.
    """
    import sys
    out = out or sys.stderr
    worst = 0
    for path in paths:
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except OSError as exc:
            print(f"{path}: UNREADABLE — {exc}", file=out)
            worst = max(worst, 4)
            continue
        except json.JSONDecodeError as exc:
            print(f"{path}: INVALID JSON (truncated or garbage) — "
                  f"{exc.msg} at line {exc.lineno} column {exc.colno}",
                  file=out)
            worst = max(worst, 4)
            continue
        except UnicodeDecodeError as exc:
            print(f"{path}: INVALID JSON (truncated or garbage) — "
                  f"not UTF-8 text ({exc.reason} at byte {exc.start})",
                  file=out)
            worst = max(worst, 4)
            continue
        try:
            validate_crash_bundle(doc)
        except ValueError as exc:
            print(f"{path}: INVALID — {exc}", file=out)
            worst = max(worst, 1)
            continue
        print(f"{path}: ok ({len(doc['events'])} buffered events, "
              f"cycle {doc['cycle']}, reason {doc['reason']!r})")
    return worst


def main(argv: Optional[List[str]] = None) -> int:
    """Validate crash bundle files given on the command line."""
    import sys
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.faults.crashdump BUNDLE.json ...",
              file=sys.stderr)
        return 2
    return validate_paths(paths)


if __name__ == "__main__":
    import sys
    sys.exit(main())
